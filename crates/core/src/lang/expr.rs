//! `Zen<T>`: a typed handle to a symbolic or concrete expression.
//!
//! This is the Rust counterpart of the paper's `Zen<T>` wrapper type: "a
//! value of type T that is handled by the Zen library and can be either
//! symbolic or concrete" (§3). Handles are `Copy` indices into the
//! thread-local expression arena and are deliberately `!Send`.

use std::marker::PhantomData;

use crate::ctx::with_ctx;
use crate::ir::{Bv2, CmpOp, ExprId};
use crate::lang::unify::unify_exprs;
use crate::lang::ztype::{ZenInt, ZenType};

/// A typed handle to an expression of model type `T`.
pub struct Zen<T: ?Sized> {
    pub(crate) id: ExprId,
    _t: PhantomData<fn() -> T>,
    _local: PhantomData<*const ()>,
}

impl<T: ?Sized> Clone for Zen<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: ?Sized> Copy for Zen<T> {}

impl<T: ?Sized> std::fmt::Debug for Zen<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Zen(#{})", self.id.0)
    }
}

impl<T: ?Sized> Zen<T> {
    /// Wrap a raw expression id. Type-correctness is the caller's burden;
    /// all sort errors are caught by the context's checks at operation
    /// time.
    #[doc(hidden)]
    pub fn from_id(id: ExprId) -> Self {
        Zen {
            id,
            _t: PhantomData,
            _local: PhantomData,
        }
    }

    /// The underlying expression id.
    pub fn expr_id(self) -> ExprId {
        self.id
    }

    /// Project struct field `idx`, retyping to `U`.
    #[doc(hidden)]
    pub fn project<U>(self, idx: u32) -> Zen<U> {
        Zen::from_id(with_ctx(|ctx| ctx.mk_get(self.id, idx)))
    }

    /// Functionally update struct field `idx` with `v`. Tolerates a
    /// sort-changing value (e.g. a list that grew), re-registering the
    /// struct sort as needed.
    #[doc(hidden)]
    pub fn with_field<U>(self, idx: u32, v: Zen<U>) -> Zen<T> {
        Zen::from_id(crate::lang::unify::with_field_dyn(self.id, idx, v.id))
    }
}

impl<T: ZenType> Zen<T> {
    /// Lift a concrete value into the language.
    pub fn constant(v: &T) -> Zen<T> {
        let val = v.to_value();
        Zen::from_id(with_ctx(|ctx| ctx.mk_const_value(&val)))
    }

    /// A fresh symbolic value. Composite types become structs of fresh
    /// primitive variables; lists get `bound` element slots.
    pub fn symbolic(bound: u16) -> Zen<T> {
        Zen::from_id(T::make_symbolic(bound))
    }

    /// Equality (`==` cannot be overloaded to return `Zen<bool>` in Rust).
    /// Structs compare field-wise; lists compare length and the valid
    /// prefix.
    pub fn eq(self, other: Zen<T>) -> Zen<bool> {
        let (a, b) = unify_exprs(self.id, other.id);
        Zen::from_id(with_ctx(|ctx| ctx.mk_eq(a, b)))
    }

    /// Disequality.
    pub fn ne(self, other: Zen<T>) -> Zen<bool> {
        !self.eq(other)
    }
}

impl<T: ZenInt> Zen<T> {
    /// Lift a plain integer.
    pub fn val(v: T) -> Zen<T> {
        Zen::from_id(with_ctx(|ctx| ctx.mk_int(T::SORT, v.to_bits())))
    }

    /// Strictly-less-than (signedness from the type).
    pub fn lt(self, other: Zen<T>) -> Zen<bool> {
        Zen::from_id(with_ctx(|ctx| ctx.mk_cmp(CmpOp::Lt, self.id, other.id)))
    }

    /// Less-than-or-equal.
    pub fn le(self, other: Zen<T>) -> Zen<bool> {
        Zen::from_id(with_ctx(|ctx| ctx.mk_cmp(CmpOp::Le, self.id, other.id)))
    }

    /// Strictly-greater-than.
    pub fn gt(self, other: Zen<T>) -> Zen<bool> {
        other.lt(self)
    }

    /// Greater-than-or-equal.
    pub fn ge(self, other: Zen<T>) -> Zen<bool> {
        other.le(self)
    }
}

impl<T: ZenInt> Zen<T> {
    /// Convert to another integer type: widening zero-extends unsigned
    /// values and sign-extends signed ones; narrowing truncates (the
    /// semantics of `as` between Rust integers).
    pub fn cast<U: ZenInt>(self) -> Zen<U> {
        Zen::from_id(with_ctx(|ctx| ctx.mk_cast(self.id, U::SORT)))
    }
}

impl Zen<bool> {
    /// A boolean constant.
    pub fn bool(b: bool) -> Zen<bool> {
        Zen::from_id(with_ctx(|ctx| ctx.mk_bool(b)))
    }

    /// Conjunction (also available as `&`).
    pub fn and(self, other: Zen<bool>) -> Zen<bool> {
        Zen::from_id(with_ctx(|ctx| ctx.mk_and(self.id, other.id)))
    }

    /// Disjunction (also available as `|`).
    pub fn or(self, other: Zen<bool>) -> Zen<bool> {
        Zen::from_id(with_ctx(|ctx| ctx.mk_or(self.id, other.id)))
    }

    /// Implication `self → other`.
    pub fn implies(self, other: Zen<bool>) -> Zen<bool> {
        (!self).or(other)
    }

    /// Biconditional.
    pub fn iff(self, other: Zen<bool>) -> Zen<bool> {
        self.eq(other)
    }
}

/// Conditional: `if c then t else e` over any model type. Branch sorts are
/// unified (lists are padded to a common slot count), implementing the
/// type-driven merging of the paper's §6.
pub fn zif<T>(c: Zen<bool>, t: Zen<T>, e: Zen<T>) -> Zen<T> {
    let (t, e) = unify_exprs(t.id, e.id);
    Zen::from_id(with_ctx(|ctx| ctx.mk_if(c.id, t, e)))
}

/// Build a symbolic pair.
pub fn pair<A: ZenType, B: ZenType>(a: Zen<A>, b: Zen<B>) -> Zen<(A, B)> {
    let sort = crate::lang::ztype::tuple_sort(&[
        with_ctx(|ctx| ctx.sort_of(a.id)),
        with_ctx(|ctx| ctx.sort_of(b.id)),
    ]);
    let crate::sorts::Sort::Struct(id) = sort else {
        unreachable!()
    };
    Zen::from_id(with_ctx(|ctx| ctx.mk_struct(id, vec![a.id, b.id])))
}

/// Build a symbolic triple.
pub fn triple<A: ZenType, B: ZenType, C: ZenType>(
    a: Zen<A>,
    b: Zen<B>,
    c: Zen<C>,
) -> Zen<(A, B, C)> {
    let sort = crate::lang::ztype::tuple_sort(&[
        with_ctx(|ctx| ctx.sort_of(a.id)),
        with_ctx(|ctx| ctx.sort_of(b.id)),
        with_ctx(|ctx| ctx.sort_of(c.id)),
    ]);
    let crate::sorts::Sort::Struct(id) = sort else {
        unreachable!()
    };
    Zen::from_id(with_ctx(|ctx| ctx.mk_struct(id, vec![a.id, b.id, c.id])))
}

impl<A: ZenType, B: ZenType> Zen<(A, B)> {
    /// First component.
    pub fn item1(self) -> Zen<A> {
        self.project(0)
    }

    /// Second component.
    pub fn item2(self) -> Zen<B> {
        self.project(1)
    }
}

impl<A: ZenType, B: ZenType, C: ZenType> Zen<(A, B, C)> {
    /// First component.
    pub fn item1(self) -> Zen<A> {
        self.project(0)
    }

    /// Second component.
    pub fn item2(self) -> Zen<B> {
        self.project(1)
    }

    /// Third component.
    pub fn item3(self) -> Zen<C> {
        self.project(2)
    }
}

// ---- Option API ----

impl<T: ZenType> Zen<Option<T>> {
    /// `Some(v)`.
    pub fn some(v: Zen<T>) -> Zen<Option<T>> {
        let tru = Zen::<bool>::bool(true);
        let sort = with_ctx(|ctx| ctx.sort_of(v.id));
        let id = crate::lang::ztype::option_struct_id(sort);
        Zen::from_id(with_ctx(|ctx| ctx.mk_struct(id, vec![tru.id, v.id])))
    }

    /// `None`. The payload slot holds the default value of the payload
    /// sort (list bound `bound` if the payload contains lists), keeping the
    /// canonical-representation invariant that makes structural equality
    /// correct.
    pub fn none(bound: u16) -> Zen<Option<T>> {
        let fls = Zen::<bool>::bool(false);
        let payload_sort = T::sort(bound);
        let id = crate::lang::ztype::option_struct_id(payload_sort);
        let dft = with_ctx(|ctx| ctx.mk_default(payload_sort));
        Zen::from_id(with_ctx(|ctx| ctx.mk_struct(id, vec![fls.id, dft])))
    }

    /// Does the option hold a value?
    pub fn is_some(self) -> Zen<bool> {
        self.project(0)
    }

    /// Is the option empty?
    pub fn is_none(self) -> Zen<bool> {
        !self.is_some()
    }

    /// The payload (the payload-sort default if the option is `None`).
    pub fn value(self) -> Zen<T> {
        self.project(1)
    }

    /// The payload, or `d` if the option is `None`.
    pub fn value_or(self, d: Zen<T>) -> Zen<T> {
        zif(self.is_some(), self.value(), d)
    }

    /// Map over the payload, preserving emptiness. The result's payload
    /// slot is the default when `None` (canonicity).
    pub fn map<U: ZenType>(self, f: impl FnOnce(Zen<T>) -> Zen<U>) -> Zen<Option<U>> {
        let mapped = f(self.value());
        let bound = 0;
        let none = Zen::<Option<U>>::none(bound);
        zif(self.is_some(), Zen::some(mapped), none)
    }

    /// Keep the value only if `keep` holds.
    pub fn filter(self, keep: impl FnOnce(Zen<T>) -> Zen<bool>) -> Zen<Option<T>> {
        let cond = self.is_some().and(keep(self.value()));
        zif(cond, self, Zen::none(0))
    }
}

// ---- Operator overloading ----

macro_rules! bin_op {
    ($trait:ident, $method:ident, $op:expr) => {
        impl<T: ZenInt> std::ops::$trait for Zen<T> {
            type Output = Zen<T>;
            fn $method(self, rhs: Zen<T>) -> Zen<T> {
                Zen::from_id(with_ctx(|ctx| ctx.mk_bv($op, self.id, rhs.id)))
            }
        }
        impl<T: ZenInt> std::ops::$trait<T> for Zen<T> {
            type Output = Zen<T>;
            fn $method(self, rhs: T) -> Zen<T> {
                let rhs = Zen::val(rhs);
                Zen::from_id(with_ctx(|ctx| ctx.mk_bv($op, self.id, rhs.id)))
            }
        }
    };
}

bin_op!(Add, add, Bv2::Add);
bin_op!(Sub, sub, Bv2::Sub);
bin_op!(Mul, mul, Bv2::Mul);
bin_op!(BitAnd, bitand, Bv2::And);
bin_op!(BitOr, bitor, Bv2::Or);
bin_op!(BitXor, bitxor, Bv2::Xor);
bin_op!(Shl, shl, Bv2::Shl);
bin_op!(Shr, shr, Bv2::Shr);

impl std::ops::Not for Zen<bool> {
    type Output = Zen<bool>;
    fn not(self) -> Zen<bool> {
        Zen::from_id(with_ctx(|ctx| ctx.mk_not(self.id)))
    }
}

impl std::ops::BitAnd for Zen<bool> {
    type Output = Zen<bool>;
    fn bitand(self, rhs: Zen<bool>) -> Zen<bool> {
        self.and(rhs)
    }
}

impl std::ops::BitOr for Zen<bool> {
    type Output = Zen<bool>;
    fn bitor(self, rhs: Zen<bool>) -> Zen<bool> {
        self.or(rhs)
    }
}

impl<T: ZenInt> From<T> for Zen<T> {
    fn from(v: T) -> Self {
        Zen::val(v)
    }
}
