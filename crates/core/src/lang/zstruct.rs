//! The `zen_struct!` macro: model a Rust struct in the Zen language.
//!
//! This replaces the C# implementation's runtime reflection over object
//! fields. The macro generates the plain Rust struct, a [`crate::ZenType`]
//! implementation, an extension trait with typed field accessors on
//! `Zen<YourStruct>`, and a `create` constructor for building symbolic
//! instances — everything the paper's `Create<T>(...)`, `e.f` and
//! `e1[f:=e2]` forms provide.
//!
//! # Syntax
//!
//! The struct name is followed by the name of the generated accessor
//! trait (Rust's coherence rules forbid inherent methods on the foreign
//! type `Zen<T>`, so accessors live on a trait you bring into scope).
//! Each field line is `getter, setter : Type;`:
//!
//! ```
//! use rzen::{zen_struct, Zen};
//!
//! zen_struct! {
//!     /// An IPv4 header (paper Fig. 4).
//!     pub struct Header : HeaderFields {
//!         dst_ip, with_dst_ip: u32;
//!         src_ip, with_src_ip: u32;
//!     }
//! }
//!
//! let h = Zen::<Header>::symbolic(0);
//! let swapped = h.with_dst_ip(h.src_ip()).with_src_ip(h.dst_ip());
//! let _check: Zen<bool> = swapped.dst_ip().eq(h.src_ip());
//! ```

use std::any::TypeId;

use crate::ctx::with_ctx;
use crate::ir::ExprId;
use crate::sorts::{Sort, StructInfo, StructKey};
use crate::value::Value;

/// Implementation detail of `zen_struct!`: register (or look up) the sort
/// of a user struct with the given field sorts.
#[doc(hidden)]
pub fn __register_user_struct<T: 'static>(
    name: &str,
    field_names: &[&str],
    sorts: Vec<Sort>,
) -> Sort {
    with_ctx(|ctx| {
        let id = ctx.register_struct(
            StructKey::Type(TypeId::of::<T>(), sorts.clone()),
            StructInfo {
                name: name.to_string(),
                fields: field_names
                    .iter()
                    .map(|s| s.to_string())
                    .zip(sorts)
                    .collect(),
            },
        );
        Sort::Struct(id)
    })
}

/// Implementation detail of `zen_struct!`: build a concrete struct value.
#[doc(hidden)]
pub fn __user_struct_value<T: 'static>(
    name: &str,
    field_names: &[&str],
    vals: Vec<Value>,
) -> Value {
    let sorts: Vec<Sort> = vals.iter().map(|v| v.sort()).collect();
    let Sort::Struct(id) = __register_user_struct::<T>(name, field_names, sorts) else {
        unreachable!()
    };
    Value::Struct(id, vals)
}

/// Implementation detail of `zen_struct!`: build a struct expression from
/// field expressions.
#[doc(hidden)]
pub fn __make_user_struct<T: 'static>(
    name: &str,
    field_names: &[&str],
    fields: Vec<ExprId>,
) -> ExprId {
    let sorts: Vec<Sort> = with_ctx(|ctx| fields.iter().map(|&f| ctx.sort_of(f)).collect());
    let Sort::Struct(id) = __register_user_struct::<T>(name, field_names, sorts) else {
        unreachable!()
    };
    with_ctx(|ctx| ctx.mk_struct(id, fields))
}

/// Model a Rust struct in the Zen language. See the module docs
/// for syntax and an example.
#[macro_export]
macro_rules! zen_struct {
    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident : $ext:ident {
            $( $(#[$fmeta:meta])* $field:ident, $setter:ident : $ftype:ty );+ $(;)?
        }
    ) => {
        $(#[$meta])*
        #[derive(Clone, Debug, PartialEq)]
        $vis struct $name {
            $( $(#[$fmeta])* pub $field : $ftype ),+
        }

        impl $crate::ZenType for $name {
            fn sort(bound: u16) -> $crate::Sort {
                let sorts = vec![ $( <$ftype as $crate::ZenType>::sort(bound) ),+ ];
                $crate::__register_user_struct::<$name>(
                    stringify!($name), &[ $( stringify!($field) ),+ ], sorts)
            }
            fn to_value(&self) -> $crate::Value {
                let vals = vec![ $( $crate::ZenType::to_value(&self.$field) ),+ ];
                $crate::__user_struct_value::<$name>(
                    stringify!($name), &[ $( stringify!($field) ),+ ], vals)
            }
            fn from_value(v: &$crate::Value) -> Self {
                let fs = v.fields();
                let mut it = fs.iter();
                $name {
                    $( $field : $crate::ZenType::from_value(
                        it.next().expect("missing struct field in value")) ),+
                }
            }
            fn make_symbolic(bound: u16) -> $crate::ExprId {
                let fields = vec![ $( <$ftype as $crate::ZenType>::make_symbolic(bound) ),+ ];
                $crate::__make_user_struct::<$name>(
                    stringify!($name), &[ $( stringify!($field) ),+ ], fields)
            }
            fn make_raw_symbolic(bound: u16) -> $crate::ExprId {
                let fields = vec![ $( <$ftype as $crate::ZenType>::make_raw_symbolic(bound) ),+ ];
                $crate::__make_user_struct::<$name>(
                    stringify!($name), &[ $( stringify!($field) ),+ ], fields)
            }
        }

        impl $name {
            /// Build a symbolic instance from symbolic field values (the
            /// paper's `Create<T>(...)`).
            #[allow(clippy::too_many_arguments)]
            $vis fn create( $( $field : $crate::Zen<$ftype> ),+ ) -> $crate::Zen<$name> {
                let fields = vec![ $( $field.expr_id() ),+ ];
                $crate::Zen::from_id($crate::__make_user_struct::<$name>(
                    stringify!($name), &[ $( stringify!($field) ),+ ], fields))
            }
        }

        /// Typed field accessors for the corresponding `Zen<T>` handle
        /// (generated by `zen_struct!`). Bring this trait into scope to
        /// project (`e.f`) and functionally update (`e1[f := e2]`) fields.
        $vis trait $ext {
            $(
                /// Project this field (the paper's `e.f`).
                fn $field(self) -> $crate::Zen<$ftype>;
                /// Functionally update this field (the paper's
                /// `e1[f := e2]`).
                fn $setter(self, v: $crate::Zen<$ftype>) -> $crate::Zen<$name>;
            )+
        }

        impl $ext for $crate::Zen<$name> {
            $crate::zen_struct!(@methods $name, 0u32, $( $field, $setter : $ftype ; )+);
        }
    };

    (@methods $name:ident, $idx:expr, $field:ident, $setter:ident : $ftype:ty ; $($rest:tt)* ) => {
        fn $field(self) -> $crate::Zen<$ftype> {
            self.project($idx)
        }
        fn $setter(self, v: $crate::Zen<$ftype>) -> $crate::Zen<$name> {
            self.with_field($idx, v)
        }
        $crate::zen_struct!(@methods $name, $idx + 1u32, $($rest)*);
    };

    (@methods $name:ident, $idx:expr, ) => {};
}
