//! Bounded symbolic lists: `Zen<Vec<T>>`.
//!
//! As in the paper's §6, a symbolic list is represented by "a variable to
//! represent the list length and another collection of variables to
//! represent the list elements". Here the representation is a struct sort
//! `{ len: u16, e0..e{n-1}: T }`, where `n` (the slot count) is fixed per
//! sort and grows structurally as `cons` is applied. The maximum symbolic
//! length comes from the bound passed to `Zen::symbolic` / `find`.
//!
//! **Canonicity invariant**: every list expression built through this API
//! keeps all slots at positions `>= len` equal to the element sort's
//! default value. This makes structural equality over the underlying
//! struct coincide with list equality, so lists nest freely inside other
//! modeled types.

use crate::ctx::with_ctx;
use crate::lang::expr::{zif, Zen};
use crate::lang::ztype::{list_sort_parts, list_struct_id, ZenType};
use crate::sorts::Sort;

impl<T: ZenType> Zen<Vec<T>> {
    /// The empty list (zero slots).
    pub fn nil() -> Zen<Vec<T>> {
        let elem = T::sort(0);
        let id = list_struct_id(elem, 0);
        Zen::from_id(with_ctx(|ctx| {
            let len = ctx.mk_int(Sort::bv(16), 0);
            ctx.mk_struct(id, vec![len])
        }))
    }

    /// Number of element slots in this list's sort (its capacity, not its
    /// length).
    pub fn slots(self) -> u16 {
        let sort = with_ctx(|ctx| ctx.sort_of(self.id));
        list_sort_parts(sort).expect("not a list sort").1
    }

    fn elem_sort(self) -> Sort {
        let sort = with_ctx(|ctx| ctx.sort_of(self.id));
        list_sort_parts(sort).expect("not a list sort").0
    }

    /// The list's length.
    pub fn length(self) -> Zen<u16> {
        self.project(0)
    }

    /// Is the list empty?
    pub fn is_empty(self) -> Zen<bool> {
        self.length().eq(Zen::val(0))
    }

    /// Raw access to slot `i` (the element-sort default beyond the
    /// length). Prefer [`Zen::at`] for semantic indexing.
    pub fn slot(self, i: u16) -> Zen<T> {
        assert!(i < self.slots(), "slot {i} out of range");
        self.project(1 + i as u32)
    }

    /// Prepend an element (the paper's `e1 :: e2`). The result has one
    /// more slot than the input.
    pub fn cons(self, head: Zen<T>) -> Zen<Vec<T>> {
        let n = self.slots();
        let elem = self.elem_sort();
        let head_sort = with_ctx(|ctx| ctx.sort_of(head.id));
        // Unify element sorts (heads containing lists may differ).
        let target_elem = crate::lang::unify::unify_sorts(elem, head_sort);
        let head = crate::lang::unify::coerce_expr(head.id, target_elem);
        let id = list_struct_id(target_elem, n + 1);
        let mut fields = Vec::with_capacity(n as usize + 2);
        let one = Zen::<u16>::val(1);
        fields.push((self.length() + one).id);
        fields.push(head);
        for i in 0..n {
            fields.push(crate::lang::unify::coerce_expr(
                self.slot(i).id,
                target_elem,
            ));
        }
        Zen::from_id(with_ctx(|ctx| ctx.mk_struct(id, fields)))
    }

    /// The head element, if any.
    pub fn head(self) -> Zen<Option<T>> {
        if self.slots() == 0 {
            return Zen::none(0);
        }
        let some = Zen::some(self.slot(0));
        zif(self.is_empty(), Zen::none(0), some)
    }

    /// The tail of the list (empty stays empty). The result has one fewer
    /// slot.
    pub fn tail(self) -> Zen<Vec<T>> {
        let n = self.slots();
        if n == 0 {
            return self;
        }
        let elem = self.elem_sort();
        let id = list_struct_id(elem, n - 1);
        let zero = Zen::<u16>::val(0);
        let one = Zen::<u16>::val(1);
        let new_len = zif(self.is_empty(), zero, self.length() - one);
        let mut fields = vec![new_len.id];
        for i in 1..n {
            fields.push(self.slot(i).id);
        }
        Zen::from_id(with_ctx(|ctx| ctx.mk_struct(id, fields)))
    }

    /// Pattern match (the paper's `case e1 of e2 ⇒ e3`): `nil_case` when
    /// empty, otherwise `cons_case(head, tail)`.
    pub fn case<U: ZenType>(
        self,
        nil_case: impl FnOnce() -> Zen<U>,
        cons_case: impl FnOnce(Zen<T>, Zen<Vec<T>>) -> Zen<U>,
    ) -> Zen<U> {
        if self.slots() == 0 {
            return nil_case();
        }
        let cons = cons_case(self.slot(0), self.tail());
        zif(self.is_empty(), nil_case(), cons)
    }

    /// Element at a symbolic index, if within the length.
    pub fn at(self, idx: Zen<u16>) -> Zen<Option<T>> {
        let mut acc: Zen<Option<T>> = Zen::none(0);
        for i in (0..self.slots()).rev() {
            let here = idx.eq(Zen::val(i)).and(self.in_range(i));
            acc = zif(here, Zen::some(self.slot(i)), acc);
        }
        acc
    }

    fn in_range(self, i: u16) -> Zen<bool> {
        Zen::<u16>::val(i).lt(self.length())
    }

    /// Does any (valid) element satisfy the predicate?
    pub fn any(self, f: impl Fn(Zen<T>) -> Zen<bool>) -> Zen<bool> {
        let mut acc = Zen::bool(false);
        for i in 0..self.slots() {
            acc = acc.or(self.in_range(i).and(f(self.slot(i))));
        }
        acc
    }

    /// Do all (valid) elements satisfy the predicate?
    pub fn all(self, f: impl Fn(Zen<T>) -> Zen<bool>) -> Zen<bool> {
        let mut acc = Zen::bool(true);
        for i in 0..self.slots() {
            acc = acc.and(self.in_range(i).implies(f(self.slot(i))));
        }
        acc
    }

    /// Does the list contain the element?
    pub fn contains(self, x: Zen<T>) -> Zen<bool> {
        self.any(|e| e.eq(x))
    }

    /// Left fold over the valid prefix.
    pub fn fold<U: ZenType>(self, init: Zen<U>, f: impl Fn(Zen<U>, Zen<T>) -> Zen<U>) -> Zen<U> {
        let mut acc = init;
        for i in 0..self.slots() {
            acc = zif(self.in_range(i), f(acc, self.slot(i)), acc);
        }
        acc
    }

    /// Map over the elements (length unchanged; canonicity restored on
    /// every slot).
    pub fn map<U: ZenType>(self, f: impl Fn(Zen<T>) -> Zen<U>) -> Zen<Vec<U>> {
        let n = self.slots();
        let mapped: Vec<Zen<U>> = (0..n).map(|i| f(self.slot(i))).collect();
        // Unify mapped element sorts.
        let sorts: Vec<Sort> = mapped
            .iter()
            .map(|m| with_ctx(|ctx| ctx.sort_of(m.id)))
            .collect();
        let elem = sorts
            .iter()
            .copied()
            .reduce(crate::lang::unify::unify_sorts)
            .unwrap_or_else(|| U::sort(0));
        let id = list_struct_id(elem, n);
        let mut fields = vec![self.length().id];
        for (i, m) in mapped.into_iter().enumerate() {
            let m = crate::lang::unify::coerce_expr(m.id, elem);
            let valid = self.in_range(i as u16);
            let guarded = with_ctx(|ctx| {
                let dflt = ctx.mk_default(elem);
                ctx.mk_if(valid.id, m, dflt)
            });
            fields.push(guarded);
        }
        Zen::from_id(with_ctx(|ctx| ctx.mk_struct(id, fields)))
    }

    /// Grow the slot count to `n` (no-op if already at least `n`).
    pub fn resize(self, n: u16) -> Zen<Vec<T>> {
        let cur = self.slots();
        if cur >= n {
            return self;
        }
        let elem = self.elem_sort();
        let target = Sort::Struct(list_struct_id(elem, n));
        Zen::from_id(crate::lang::unify::coerce_expr(self.id, target))
    }

    /// Keep only the elements satisfying the predicate (order preserved).
    /// Built by re-consing the survivors, so the canonicity invariant is
    /// maintained by construction.
    pub fn retain(self, pred: impl Fn(Zen<T>) -> Zen<bool>) -> Zen<Vec<T>> {
        let mut acc = Zen::<Vec<T>>::nil();
        // Iterate back-to-front: cons prepends, so the original order
        // survives.
        for i in (0..self.slots()).rev() {
            let keep = self.in_range(i).and(pred(self.slot(i)));
            acc = zif(keep, acc.cons(self.slot(i)), acc);
        }
        acc
    }

    /// Append another list after this one.
    pub fn append(self, other: Zen<Vec<T>>) -> Zen<Vec<T>> {
        let mut acc = other;
        for i in (0..self.slots()).rev() {
            let take = self.in_range(i);
            acc = zif(take, acc.cons(self.slot(i)), acc);
        }
        acc
    }
}
