//! The [`ZenType`] trait: rzen's substitute for the C# implementation's
//! runtime reflection.
//!
//! The paper's Zen "uses the reflection capabilities of C# to introspect
//! the types of objects at runtime" (§6). Rust has no runtime reflection,
//! so each modelable type describes itself through this trait: its sort,
//! conversions to and from concrete [`Value`]s, and how to build a fresh
//! symbolic instance. `zen_struct!` implements it for user structs;
//! implementations for primitives, options, tuples, and bounded lists live
//! here.

use crate::ctx::with_ctx;
use crate::ir::ExprId;
use crate::sorts::{Sort, StructId, StructInfo, StructKey};
use crate::value::Value;

/// A Rust type that can be modeled in the Zen language.
pub trait ZenType: Clone + 'static {
    /// The sort of this type. `bound` is the number of element slots given
    /// to each list in the type (ignored by list-free types); it plays the
    /// role of the paper's "optional parameter to the Find function" that
    /// controls the maximum list length.
    fn sort(bound: u16) -> Sort;

    /// Convert a concrete value into the IR value representation. Lists
    /// use exactly as many slots as they have elements.
    fn to_value(&self) -> Value;

    /// Read a concrete value back from the IR representation (e.g. a
    /// decoded solver model).
    fn from_value(v: &Value) -> Self;

    /// Build a fresh symbolic instance: a tree of structs over fresh
    /// primitive variables, with lists canonicalized (slots beyond the
    /// length hold defaults).
    fn make_symbolic(bound: u16) -> ExprId;

    /// Build a fresh *raw* symbolic instance: a pure struct-of-variables
    /// tree with no canonicalization guards, so that variable bits align
    /// positionally with the sort's flattened value bits. This is the
    /// representation used by state-set transformers, which operate on raw
    /// bit spaces (like HSA's header spaces).
    fn make_raw_symbolic(bound: u16) -> ExprId;
}

/// A fixed-width integer primitive usable with arithmetic operators and
/// order comparisons.
pub trait ZenInt: ZenType + Copy {
    /// The bitvector sort of this type.
    const SORT: Sort;

    /// Raw bits of the value (two's complement for signed types).
    fn to_bits(self) -> u64;

    /// Reconstruct from raw bits.
    fn from_bits(bits: u64) -> Self;
}

macro_rules! int_impl {
    ($t:ty, $width:expr, $signed:expr) => {
        impl ZenType for $t {
            fn sort(_bound: u16) -> Sort {
                <$t as ZenInt>::SORT
            }
            fn to_value(&self) -> Value {
                Value::int(<$t as ZenInt>::SORT, ZenInt::to_bits(*self))
            }
            fn from_value(v: &Value) -> Self {
                <$t as ZenInt>::from_bits(v.as_bits())
            }
            fn make_symbolic(_bound: u16) -> ExprId {
                with_ctx(|ctx| ctx.mk_var(<$t as ZenInt>::SORT))
            }
            fn make_raw_symbolic(_bound: u16) -> ExprId {
                with_ctx(|ctx| ctx.mk_var(<$t as ZenInt>::SORT))
            }
        }
        impl ZenInt for $t {
            const SORT: Sort = Sort::BitVec {
                width: $width,
                signed: $signed,
            };
            fn to_bits(self) -> u64 {
                self as u64
            }
            fn from_bits(bits: u64) -> Self {
                bits as $t
            }
        }
    };
}

int_impl!(u8, 8, false);
int_impl!(u16, 16, false);
int_impl!(u32, 32, false);
int_impl!(u64, 64, false);
int_impl!(i8, 8, true);
int_impl!(i16, 16, true);
int_impl!(i32, 32, true);
int_impl!(i64, 64, true);

impl ZenType for bool {
    fn sort(_bound: u16) -> Sort {
        Sort::Bool
    }
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
    fn from_value(v: &Value) -> Self {
        v.as_bool()
    }
    fn make_symbolic(_bound: u16) -> ExprId {
        with_ctx(|ctx| ctx.mk_var(Sort::Bool))
    }
    fn make_raw_symbolic(_bound: u16) -> ExprId {
        with_ctx(|ctx| ctx.mk_var(Sort::Bool))
    }
}

/// Register (or look up) the option struct sort for a payload sort.
pub(crate) fn option_struct_id(payload: Sort) -> StructId {
    with_ctx(|ctx| {
        ctx.register_struct(
            StructKey::Option(payload),
            StructInfo {
                name: "Option".into(),
                fields: vec![("has".into(), Sort::Bool), ("val".into(), payload)],
            },
        )
    })
}

impl<T: ZenType> ZenType for Option<T> {
    fn sort(bound: u16) -> Sort {
        Sort::Struct(option_struct_id(T::sort(bound)))
    }
    fn to_value(&self) -> Value {
        match self {
            Some(v) => {
                let val = v.to_value();
                let id = option_struct_id(val.sort());
                Value::Struct(id, vec![Value::Bool(true), val])
            }
            None => {
                // Payload defaults to the zero value of the bound-0 sort;
                // unification pads it when mixed with larger list sorts.
                let payload = T::sort(0);
                let id = option_struct_id(payload);
                let dflt = with_ctx(|ctx| {
                    let e = ctx.mk_default(payload);
                    ctx.eval_const(e)
                });
                Value::Struct(id, vec![Value::Bool(false), dflt])
            }
        }
    }
    fn from_value(v: &Value) -> Self {
        let fs = v.fields();
        if fs[0].as_bool() {
            Some(T::from_value(&fs[1]))
        } else {
            None
        }
    }
    fn make_symbolic(bound: u16) -> ExprId {
        // Recursive calls happen before taking the context borrow: the
        // context is a thread-local RefCell and must not be re-entered.
        let payload_sort = T::sort(bound);
        let id = option_struct_id(payload_sort);
        let val_sym = T::make_symbolic(bound);
        with_ctx(|ctx| {
            let has = ctx.mk_var(Sort::Bool);
            // Canonicity: the payload is the default unless `has` holds.
            let dflt = ctx.mk_default(payload_sort);
            let val = ctx.mk_if(has, val_sym, dflt);
            ctx.mk_struct(id, vec![has, val])
        })
    }
    fn make_raw_symbolic(bound: u16) -> ExprId {
        let payload_sort = T::sort(bound);
        let id = option_struct_id(payload_sort);
        let val = T::make_raw_symbolic(bound);
        with_ctx(|ctx| {
            let has = ctx.mk_var(Sort::Bool);
            ctx.mk_struct(id, vec![has, val])
        })
    }
}

/// Register (or look up) the tuple struct sort for component sorts.
pub(crate) fn tuple_sort(sorts: &[Sort]) -> Sort {
    with_ctx(|ctx| {
        let fields = sorts
            .iter()
            .enumerate()
            .map(|(i, &s)| (format!("item{}", i + 1), s))
            .collect();
        let id = ctx.register_struct(
            StructKey::Tuple(sorts.to_vec()),
            StructInfo {
                name: format!("Tuple{}", sorts.len()),
                fields,
            },
        );
        Sort::Struct(id)
    })
}

macro_rules! tuple_impl {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: ZenType),+> ZenType for ($($name,)+) {
            fn sort(bound: u16) -> Sort {
                tuple_sort(&[$($name::sort(bound)),+])
            }
            fn to_value(&self) -> Value {
                let vals = vec![$(self.$idx.to_value()),+];
                let sorts: Vec<Sort> = vals.iter().map(|v| v.sort()).collect();
                let Sort::Struct(id) = tuple_sort(&sorts) else { unreachable!() };
                Value::Struct(id, vals)
            }
            fn from_value(v: &Value) -> Self {
                let fs = v.fields();
                ($($name::from_value(&fs[$idx]),)+)
            }
            fn make_symbolic(bound: u16) -> ExprId {
                let fields = vec![$($name::make_symbolic(bound)),+];
                let Sort::Struct(id) = Self::sort(bound) else { unreachable!() };
                with_ctx(|ctx| ctx.mk_struct(id, fields))
            }
            fn make_raw_symbolic(bound: u16) -> ExprId {
                let fields = vec![$($name::make_raw_symbolic(bound)),+];
                let Sort::Struct(id) = Self::sort(bound) else { unreachable!() };
                with_ctx(|ctx| ctx.mk_struct(id, fields))
            }
        }
    };
}

tuple_impl!(A: 0, B: 1);
tuple_impl!(A: 0, B: 1, C: 2);
tuple_impl!(A: 0, B: 1, C: 2, D: 3);

/// Register (or look up) the list struct sort for an element sort and slot
/// count. Layout: `{ len: u16, e0..e{slots-1}: elem }`.
pub(crate) fn list_struct_id(elem: Sort, slots: u16) -> StructId {
    with_ctx(|ctx| {
        let mut fields = vec![("len".to_string(), Sort::bv(16))];
        for i in 0..slots {
            fields.push((format!("e{i}"), elem));
        }
        ctx.register_struct(
            StructKey::List(elem, slots),
            StructInfo {
                name: format!("List[{slots}]"),
                fields,
            },
        )
    })
}

/// If `sort` is a list sort, its element sort and slot count.
pub(crate) fn list_sort_parts(sort: Sort) -> Option<(Sort, u16)> {
    let Sort::Struct(id) = sort else { return None };
    with_ctx(|ctx| match ctx.struct_key(id) {
        StructKey::List(elem, slots) => Some((*elem, *slots)),
        _ => None,
    })
}

impl<T: ZenType> ZenType for Vec<T> {
    fn sort(bound: u16) -> Sort {
        Sort::Struct(list_struct_id(T::sort(bound), bound))
    }
    fn to_value(&self) -> Value {
        let vals: Vec<Value> = self.iter().map(|v| v.to_value()).collect();
        // All element values must share one sort: unify by padding any
        // nested lists to the maximum slot count seen.
        let elem_sort = crate::lang::unify::unify_value_sorts(&vals, || T::sort(0));
        let vals: Vec<Value> = vals
            .iter()
            .map(|v| crate::lang::unify::coerce_value(v, elem_sort))
            .collect();
        let slots = vals.len() as u16;
        let id = list_struct_id(elem_sort, slots);
        let mut fields = vec![Value::int(Sort::bv(16), slots as u64)];
        fields.extend(vals);
        Value::Struct(id, fields)
    }
    fn from_value(v: &Value) -> Self {
        let fs = v.fields();
        let len = (fs[0].as_bits() as usize).min(fs.len() - 1);
        fs[1..=len].iter().map(T::from_value).collect()
    }
    fn make_symbolic(bound: u16) -> ExprId {
        let elem_sort = T::sort(bound);
        let elems: Vec<ExprId> = (0..bound).map(|_| T::make_symbolic(bound)).collect();
        with_ctx(|ctx| {
            let id = list_struct_id_raw(ctx, elem_sort, bound);
            let len_var = ctx.mk_var(Sort::bv(16));
            // Canonical length: clamp to the slot count.
            let bound_c = ctx.mk_int(Sort::bv(16), bound as u64);
            let le = ctx.mk_cmp(crate::ir::CmpOp::Le, len_var, bound_c);
            let len = ctx.mk_if(le, len_var, bound_c);
            // Canonical slots: defaults beyond the length.
            let mut fields = vec![len];
            for (i, &e) in elems.iter().enumerate() {
                let idx = ctx.mk_int(Sort::bv(16), i as u64);
                let valid = ctx.mk_cmp(crate::ir::CmpOp::Lt, idx, len);
                let dflt = ctx.mk_default(elem_sort);
                fields.push(ctx.mk_if(valid, e, dflt));
            }
            ctx.mk_struct(id, fields)
        })
    }
    fn make_raw_symbolic(bound: u16) -> ExprId {
        let elem_sort = T::sort(bound);
        let elems: Vec<ExprId> = (0..bound).map(|_| T::make_raw_symbolic(bound)).collect();
        with_ctx(|ctx| {
            let id = list_struct_id_raw(ctx, elem_sort, bound);
            let mut fields = vec![ctx.mk_var(Sort::bv(16))];
            fields.extend(elems);
            ctx.mk_struct(id, fields)
        })
    }
}

/// Like [`list_struct_id`] but callable while already holding the context.
pub(crate) fn list_struct_id_raw(
    ctx: &mut crate::ctx::Context,
    elem: Sort,
    slots: u16,
) -> StructId {
    let mut fields = vec![("len".to_string(), Sort::bv(16))];
    for i in 0..slots {
        fields.push((format!("e{i}"), elem));
    }
    ctx.register_struct(
        StructKey::List(elem, slots),
        StructInfo {
            name: format!("List[{slots}]"),
            fields,
        },
    )
}
