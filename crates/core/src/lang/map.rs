//! Symbolic maps, implemented exactly as the paper describes (§5): "Zen
//! currently implements dictionaries by representing them as lists of
//! tuples with the most recent elements at the head of the list". This is
//! an instance of the `adapt` mechanism — a new type implemented by
//! conversion to types the language already handles.

use crate::lang::expr::{pair, zif, Zen};
use crate::lang::ztype::ZenType;
use crate::value::Value;

/// A concrete map value: an association list, most recent binding first.
/// Earlier bindings for the same key are shadowed, not removed.
///
/// ```
/// use rzen::{ZMap, Zen, ZenFunction};
///
/// let lookup = ZenFunction::new(|m: Zen<ZMap<u8, u16>>| {
///     m.set(Zen::val(1), Zen::val(100)).get(Zen::val(1)).value_or(Zen::val(0))
/// });
/// let mut m = ZMap::new();
/// m.set(1u8, 7u16);
/// assert_eq!(lookup.evaluate(&m), 100); // the newer binding shadows
/// ```
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ZMap<K, V> {
    /// The underlying association list (head = most recent).
    pub entries: Vec<(K, V)>,
}

impl<K: PartialEq, V> ZMap<K, V> {
    /// The empty map.
    pub fn new() -> Self {
        ZMap {
            entries: Vec::new(),
        }
    }

    /// Insert a binding (shadows earlier ones).
    pub fn set(&mut self, k: K, v: V) {
        self.entries.insert(0, (k, v));
    }

    /// Look up the most recent binding.
    pub fn get(&self, k: &K) -> Option<&V> {
        self.entries.iter().find(|(ek, _)| ek == k).map(|(_, v)| v)
    }
}

impl<K: ZenType, V: ZenType> ZenType for ZMap<K, V> {
    fn sort(bound: u16) -> crate::sorts::Sort {
        <Vec<(K, V)>>::sort(bound)
    }
    fn to_value(&self) -> Value {
        self.entries.to_value()
    }
    fn from_value(v: &Value) -> Self {
        ZMap {
            entries: <Vec<(K, V)>>::from_value(v),
        }
    }
    fn make_symbolic(bound: u16) -> crate::ir::ExprId {
        <Vec<(K, V)>>::make_symbolic(bound)
    }
    fn make_raw_symbolic(bound: u16) -> crate::ir::ExprId {
        <Vec<(K, V)>>::make_raw_symbolic(bound)
    }
}

impl<K: ZenType, V: ZenType> Zen<ZMap<K, V>> {
    /// The empty symbolic map.
    pub fn empty() -> Zen<ZMap<K, V>> {
        Zen::from_id(Zen::<Vec<(K, V)>>::nil().expr_id())
    }

    fn as_list(self) -> Zen<Vec<(K, V)>> {
        Zen::from_id(self.expr_id())
    }

    /// Insert a binding (cons at the head, shadowing earlier bindings).
    pub fn set(self, k: Zen<K>, v: Zen<V>) -> Zen<ZMap<K, V>> {
        Zen::from_id(self.as_list().cons(pair(k, v)).expr_id())
    }

    /// Look up the most recent binding for `k`.
    pub fn get(self, k: Zen<K>) -> Zen<Option<V>> {
        let list = self.as_list();
        // Scan from the head; keep the first hit.
        let mut acc: Zen<Option<V>> = Zen::none(0);
        for i in (0..list.slots()).rev() {
            let entry = list.slot(i);
            let valid = Zen::<u16>::val(i).lt(list.length());
            let hit = valid.and(entry.item1().eq(k));
            acc = zif(hit, Zen::some(entry.item2()), acc);
        }
        // Scanning in reverse means later (smaller-index, more recent)
        // entries overwrite earlier hits — head wins, as required.
        acc
    }

    /// Does the map bind `k`?
    pub fn contains_key(self, k: Zen<K>) -> Zen<bool> {
        self.get(k).is_some()
    }
}

impl<K, V> ZMap<K, V> {
    /// Iterate over all bindings, most recent first (shadowed bindings
    /// included).
    pub fn iter(&self) -> impl Iterator<Item = &(K, V)> {
        self.entries.iter()
    }
}
