//! Sort unification and coercion — the "type-driven merging operation
//! similar to that employed by Rosette" of the paper's §6.
//!
//! Two expressions of the same *model* type can have different *sorts* when
//! they contain lists of different slot counts (e.g. the result of a `cons`
//! versus the original list). Before an `if` merges branches or an `eq`
//! compares operands, both sides are coerced to a common sort by padding
//! the shorter list with default-valued slots. The list canonicity
//! invariant (slots beyond the length always hold defaults) makes this
//! padding semantically invisible.

use crate::ctx::with_ctx;
use crate::ir::ExprId;
use crate::sorts::{Sort, StructKey};
use crate::value::Value;

/// Coerce both expressions to their unified sort.
pub(crate) fn unify_exprs(a: ExprId, b: ExprId) -> (ExprId, ExprId) {
    let (sa, sb) = with_ctx(|ctx| (ctx.sort_of(a), ctx.sort_of(b)));
    if sa == sb {
        return (a, b);
    }
    let target = unify_sorts(sa, sb);
    (coerce_expr(a, target), coerce_expr(b, target))
}

/// Compute the least common sort of two sorts of the same model type.
/// Panics when the sorts are structurally incompatible (a genuine type
/// error in the model).
pub(crate) fn unify_sorts(a: Sort, b: Sort) -> Sort {
    if a == b {
        return a;
    }
    let (Sort::Struct(ia), Sort::Struct(ib)) = (a, b) else {
        panic!("cannot unify primitive sorts {a:?} and {b:?}");
    };
    let (ka, kb) = with_ctx(|ctx| (ctx.struct_key(ia).clone(), ctx.struct_key(ib).clone()));
    match (ka, kb) {
        (StructKey::List(ea, na), StructKey::List(eb, nb)) => {
            let elem = unify_sorts(ea, eb);
            let slots = na.max(nb);
            Sort::Struct(crate::lang::ztype::list_struct_id(elem, slots))
        }
        (StructKey::Option(pa), StructKey::Option(pb)) => {
            let p = unify_sorts(pa, pb);
            Sort::Struct(crate::lang::ztype::option_struct_id(p))
        }
        (StructKey::Tuple(va), StructKey::Tuple(vb)) if va.len() == vb.len() => {
            let sorts: Vec<Sort> = va
                .into_iter()
                .zip(vb)
                .map(|(x, y)| unify_sorts(x, y))
                .collect();
            crate::lang::ztype::tuple_sort(&sorts)
        }
        (StructKey::Type(ta, va), StructKey::Type(tb, vb)) if ta == tb => {
            let sorts: Vec<Sort> = va
                .into_iter()
                .zip(vb)
                .map(|(x, y)| unify_sorts(x, y))
                .collect();
            // Re-register under the unified field sorts, reusing the
            // original name and field names.
            with_ctx(|ctx| {
                let info = ctx.struct_info(ia);
                let name = info.name.clone();
                let fnames: Vec<String> = info.fields.iter().map(|f| f.0.clone()).collect();
                let id = ctx.register_struct(
                    StructKey::Type(ta, sorts.clone()),
                    crate::sorts::StructInfo {
                        name,
                        fields: fnames.into_iter().zip(sorts).collect(),
                    },
                );
                Sort::Struct(id)
            })
        }
        (ka, kb) => panic!("cannot unify incompatible struct sorts {ka:?} and {kb:?}"),
    }
}

/// Coerce an expression to a (compatible, already-unified) target sort by
/// rebuilding its struct skeleton and padding list slots with defaults.
pub(crate) fn coerce_expr(e: ExprId, to: Sort) -> ExprId {
    let from = with_ctx(|ctx| ctx.sort_of(e));
    if from == to {
        return e;
    }
    let (Sort::Struct(fi), Sort::Struct(ti)) = (from, to) else {
        panic!("cannot coerce primitive sort {from:?} to {to:?}");
    };
    let (fk, tk) = with_ctx(|ctx| (ctx.struct_key(fi).clone(), ctx.struct_key(ti).clone()));
    match (fk, tk) {
        (StructKey::List(_, nf), StructKey::List(et, nt)) => {
            assert!(nf <= nt, "coercion cannot shrink a list");
            let len = with_ctx(|ctx| ctx.mk_get(e, 0));
            let mut fields = vec![len];
            for i in 0..nf {
                let slot = with_ctx(|ctx| ctx.mk_get(e, 1 + i as u32));
                fields.push(coerce_expr(slot, et));
            }
            for _ in nf..nt {
                fields.push(with_ctx(|ctx| ctx.mk_default(et)));
            }
            with_ctx(|ctx| ctx.mk_struct(ti, fields))
        }
        (StructKey::Option(_), StructKey::Option(pt)) => {
            let has = with_ctx(|ctx| ctx.mk_get(e, 0));
            let val = with_ctx(|ctx| ctx.mk_get(e, 1));
            let val = coerce_expr(val, pt);
            with_ctx(|ctx| ctx.mk_struct(ti, vec![has, val]))
        }
        (StructKey::Tuple(vf), StructKey::Tuple(vt)) if vf.len() == vt.len() => {
            coerce_fields(e, ti, &vt)
        }
        (StructKey::Type(tf, vf), StructKey::Type(tt, vt)) if tf == tt && vf.len() == vt.len() => {
            coerce_fields(e, ti, &vt)
        }
        (fk, tk) => panic!("cannot coerce {fk:?} to {tk:?}"),
    }
}

fn coerce_fields(e: ExprId, target_id: crate::sorts::StructId, target_sorts: &[Sort]) -> ExprId {
    let mut fields = Vec::with_capacity(target_sorts.len());
    for (i, &ts) in target_sorts.iter().enumerate() {
        let f = with_ctx(|ctx| ctx.mk_get(e, i as u32));
        fields.push(coerce_expr(f, ts));
    }
    with_ctx(|ctx| ctx.mk_struct(target_id, fields))
}

/// Unify the sorts of a slice of values (used when lifting a concrete list
/// whose elements contain lists of different lengths).
pub(crate) fn unify_value_sorts(vals: &[Value], fallback: impl FnOnce() -> Sort) -> Sort {
    match vals {
        [] => fallback(),
        [first, rest @ ..] => rest
            .iter()
            .fold(first.sort(), |acc, v| unify_sorts(acc, v.sort())),
    }
}

/// Coerce a concrete value to a compatible target sort (the value-level
/// mirror of [`coerce_expr`]).
pub(crate) fn coerce_value(v: &Value, to: Sort) -> Value {
    if v.sort() == to {
        return v.clone();
    }
    let (Sort::Struct(fi), Sort::Struct(ti)) = (v.sort(), to) else {
        panic!("cannot coerce value of sort {:?} to {to:?}", v.sort());
    };
    let (fk, tk) = with_ctx(|ctx| (ctx.struct_key(fi).clone(), ctx.struct_key(ti).clone()));
    let fs = v.fields();
    match (fk, tk) {
        (StructKey::List(_, nf), StructKey::List(et, nt)) => {
            assert!(nf <= nt, "coercion cannot shrink a list");
            let mut fields = vec![fs[0].clone()];
            for f in &fs[1..] {
                fields.push(coerce_value(f, et));
            }
            let dflt = default_value(et);
            for _ in nf..nt {
                fields.push(dflt.clone());
            }
            Value::Struct(ti, fields)
        }
        (StructKey::Option(_), StructKey::Option(pt)) => {
            Value::Struct(ti, vec![fs[0].clone(), coerce_value(&fs[1], pt)])
        }
        (StructKey::Tuple(_), StructKey::Tuple(vt)) => Value::Struct(
            ti,
            fs.iter()
                .zip(&vt)
                .map(|(f, &t)| coerce_value(f, t))
                .collect(),
        ),
        (StructKey::Type(tf, _), StructKey::Type(tt, vt)) if tf == tt => Value::Struct(
            ti,
            fs.iter()
                .zip(&vt)
                .map(|(f, &t)| coerce_value(f, t))
                .collect(),
        ),
        (fk, tk) => panic!("cannot coerce value {fk:?} to {tk:?}"),
    }
}

/// The concrete default (zero) value of a sort.
pub(crate) fn default_value(sort: Sort) -> Value {
    with_ctx(|ctx| {
        let e = ctx.mk_default(sort);
        ctx.eval_const(e)
    })
}

/// Functional field update that tolerates a *sort-changing* new value
/// (e.g. storing a grown list back into a struct field): the struct sort
/// is re-registered under the updated field sorts.
pub(crate) fn with_field_dyn(e: ExprId, idx: u32, v: ExprId) -> ExprId {
    let (esort, vsort) = with_ctx(|ctx| (ctx.sort_of(e), ctx.sort_of(v)));
    let Sort::Struct(id) = esort else {
        panic!("with_field: operand is not a struct");
    };
    let current = with_ctx(|ctx| ctx.struct_info(id).fields[idx as usize].1);
    if current == vsort {
        return with_ctx(|ctx| ctx.mk_with(e, idx, v));
    }
    // Rebuild the struct under the updated field sorts.
    let (key, name, fnames, mut sorts) = with_ctx(|ctx| {
        let info = ctx.struct_info(id);
        (
            ctx.struct_key(id).clone(),
            info.name.clone(),
            info.fields.iter().map(|f| f.0.clone()).collect::<Vec<_>>(),
            info.fields.iter().map(|f| f.1).collect::<Vec<_>>(),
        )
    });
    sorts[idx as usize] = vsort;
    let new_key = match key {
        StructKey::Type(tid, _) => StructKey::Type(tid, sorts.clone()),
        StructKey::Tuple(_) => StructKey::Tuple(sorts.clone()),
        StructKey::Option(_) => StructKey::Option(sorts[1]),
        StructKey::List(..) => {
            panic!("sort-changing update of a single list slot; coerce the whole list instead")
        }
        StructKey::Named(n) => StructKey::Named(n),
    };
    let new_id = with_ctx(|ctx| {
        ctx.register_struct(
            new_key,
            crate::sorts::StructInfo {
                name,
                fields: fnames.into_iter().zip(sorts.clone()).collect(),
            },
        )
    });
    let mut fields = Vec::with_capacity(sorts.len());
    for i in 0..sorts.len() as u32 {
        if i == idx {
            fields.push(v);
        } else {
            fields.push(with_ctx(|ctx| ctx.mk_get(e, i)));
        }
    }
    with_ctx(|ctx| ctx.mk_struct(new_id, fields))
}
