//! The typed host-language embedding: `Zen<T>` handles, the [`ZenType`]
//! reflection trait, struct modeling, and the list/option/map frontends.

mod expr;
mod list;
mod map;
pub(crate) mod unify;
pub(crate) mod zstruct;
pub(crate) mod ztype;

pub use expr::{pair, triple, zif, Zen};
pub use map::ZMap;
pub use ztype::{ZenInt, ZenType};
