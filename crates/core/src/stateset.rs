//! State sets and state-set transformers — the paper's novel abstraction
//! for "computing with sets" (§4).
//!
//! A [`StateSet<T>`] is a set of values of model type `T`, represented as a
//! BDD over a canonical block of variables: flattened value bit `i` of the
//! sort lives at BDD level `2i`. A [`StateSetTransformer<A, R>`] is the
//! relation `R(x, y) ⇔ f(x) = y`, with output bits at the odd levels
//! `2j + 1` — input and output blocks are *interleaved*, which keeps
//! near-identity packet transformations (the common case in networks)
//! small, exactly the ordering rationale of §6.
//!
//! `transform_forward` is one relational product (`∃x. S(x) ∧ R(x,y)`)
//! followed by one variable substitution back to the even block;
//! `transform_reverse` is the mirror image. The substitution step is the
//! paper's "converts between the sets of variables dynamically at runtime
//! using a BDD substitution operation".
//!
//! Sets operate on *raw* bit spaces (like HSA's header spaces): every bit
//! pattern is a state. For types containing `Option`s, patterns that
//! differ only in an absent payload are distinct states; decoding an
//! element normalizes them.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::rc::Rc;

use rzen_bdd::{Bdd, BddManager, Cube, VarMap, BDD_FALSE, BDD_TRUE};

use crate::backend::bdd::BddAlg;
use crate::backend::bitblast::BitCompiler;
use crate::backend::ordering::VarOrder;
use crate::ctx::with_ctx;
use crate::function::ZenFunction;
use crate::ir::{Expr, ExprId};
use crate::lang::{Zen, ZenType};
use crate::sorts::Sort;
use crate::value::Value;

/// A shared BDD manager plus the canonical variable-block convention.
/// All sets and transformers that interact must come from one space.
///
/// ```
/// use rzen::{TransformerSpace, Zen, ZenFunction};
///
/// let space = TransformerSpace::new();
/// let incr = ZenFunction::new(|x: Zen<u8>| x + 1u8).transformer(&space);
/// let small = space.set_of::<u8>(|x| x.lt(Zen::val(10)));
/// let image = incr.transform_forward(&small);
/// assert_eq!(image.count(), 10.0);               // {1..=10}
/// assert!(image.intersect(&space.singleton(&10)).is_empty() == false);
/// let pre = incr.transform_reverse(&space.singleton(&0));
/// assert_eq!(pre.element(), Some(255));          // wrap-around
/// ```
pub struct TransformerSpace {
    m: Rc<RefCell<BddManager>>,
    /// List bound used when building symbolic inputs.
    bound: u16,
}

impl TransformerSpace {
    /// Create a space with the default list bound (4).
    pub fn new() -> Self {
        TransformerSpace {
            m: Rc::new(RefCell::new(BddManager::new())),
            bound: 4,
        }
    }

    /// Create a space with an explicit list bound.
    pub fn with_bound(bound: u16) -> Self {
        TransformerSpace {
            m: Rc::new(RefCell::new(BddManager::new())),
            bound,
        }
    }

    /// The list bound of this space.
    pub fn bound(&self) -> u16 {
        self.bound
    }

    /// Build the raw symbolic input for sort `T` along with the variable
    /// order placing its bits at the even levels (permuted by the sort's
    /// canonical layout).
    fn raw_input<T: ZenType>(&self) -> (ExprId, VarOrder, u32) {
        let input = T::make_raw_symbolic(self.bound);
        let mut order = VarOrder::with_base(u32::MAX / 2);
        let width = with_ctx(|ctx| {
            let sort = ctx.sort_of(input);
            let perm = sort_layout(ctx, sort);
            let mut pos = 0u32;
            assign_flat(ctx, input, &mut pos, &mut order, &perm, 0);
            pos
        });
        (input, order, width)
    }

    /// Lift a model to a transformer.
    pub fn transformer<A: ZenType, R: ZenType>(
        &self,
        f: &ZenFunction<A, R>,
    ) -> StateSetTransformer<A, R> {
        let (input, order, wa) = self.raw_input::<A>();
        let out = f.apply(Zen::from_id(input));
        let out_perm = with_ctx(|ctx| sort_layout(ctx, ctx.sort_of(out.expr_id())));
        let mut m = self.m.borrow_mut();
        let (out_flat, wr) = {
            let mut alg = BddAlg { m: &mut m, order };
            let mut compiler = BitCompiler::new(&mut alg);
            let sym = with_ctx(|ctx| compiler.compile(ctx, out.expr_id()));
            let mut flat = Vec::new();
            sym.flatten(&mut flat);
            let wr = flat.len() as u32;
            (flat, wr)
        };
        let mut relation = BDD_TRUE;
        // Conjoin bit constraints from the bottom of the order upward for
        // smaller intermediate BDDs.
        let mut constraints: Vec<(u32, Bdd)> = out_flat
            .iter()
            .enumerate()
            .map(|(j, ob)| (2 * out_perm[j] + 1, *ob))
            .collect();
        constraints.sort_by_key(|&(level, _)| level);
        for (level, ob) in constraints.into_iter().rev() {
            let y = m.var(level);
            let c = m.iff(y, ob);
            relation = m.and(relation, c);
        }
        drop(m);
        StateSetTransformer {
            relation,
            m: self.m.clone(),
            wa,
            wr,
            bound: self.bound,
            _t: PhantomData,
        }
    }

    /// The set of values of `T` satisfying a predicate.
    pub fn set_of<T: ZenType>(&self, pred: impl FnOnce(Zen<T>) -> Zen<bool>) -> StateSet<T> {
        let (input, order, w) = self.raw_input::<T>();
        let cond = pred(Zen::from_id(input));
        let mut m = self.m.borrow_mut();
        let bdd = {
            let mut alg = BddAlg { m: &mut m, order };
            let mut compiler = BitCompiler::new(&mut alg);
            let sym = with_ctx(|ctx| compiler.compile(ctx, cond.expr_id()));
            *sym.as_bool()
        };
        drop(m);
        StateSet {
            bdd,
            m: self.m.clone(),
            width: w,
            _t: PhantomData,
        }
    }

    /// The full space of `T`.
    pub fn full<T: ZenType>(&self) -> StateSet<T> {
        self.set_of::<T>(|_| Zen::bool(true))
    }

    /// The empty set of `T`.
    pub fn empty<T: ZenType>(&self) -> StateSet<T> {
        self.set_of::<T>(|_| Zen::bool(false))
    }

    /// The singleton set containing one concrete value.
    pub fn singleton<T: ZenType>(&self, v: &T) -> StateSet<T> {
        let c = Zen::constant(v);
        self.set_of::<T>(move |x| x.eq(c))
    }
}

impl Default for TransformerSpace {
    fn default() -> Self {
        Self::new()
    }
}

/// Walk a raw symbolic input (a pure struct-of-variables tree) and assign
/// its variable bits to levels: flattened bit `pos` goes to level
/// `2*perm[pos] + phase`.
fn assign_flat(
    ctx: &crate::ctx::Context,
    e: ExprId,
    pos: &mut u32,
    order: &mut VarOrder,
    perm: &[u32],
    phase: u32,
) {
    match ctx.expr(e) {
        Expr::Var(v) => {
            let w = match ctx.var_sort(*v) {
                Sort::Bool => 1u32,
                Sort::BitVec { width, .. } => width as u32,
                Sort::Struct(_) => unreachable!(),
            };
            // Flattening is MSB-first: flat position *pos holds the MSB.
            for k in 0..w {
                let bit = w - 1 - k; // LSB-relative index
                order.force((*v, bit), 2 * perm[(*pos + k) as usize] + phase);
            }
            *pos += w;
        }
        Expr::MakeStruct(_, fs) => {
            let fs = fs.to_vec();
            for f in fs {
                assign_flat(ctx, f, pos, order, perm, phase);
            }
        }
        other => panic!("raw symbolic input must be a struct-of-variables tree, found {other:?}"),
    }
}

/// Canonical bit layout of a sort: a permutation `perm[flat_pos] = slot`
/// that interleaves the bits of same-shaped sibling fields.
///
/// Rationale (the §6 ordering insight applied to sets): network
/// transformations copy fields between structurally similar parts of a
/// value — encapsulation copies the overlay header's ports into the
/// underlay header. If those fields are laid out far apart, both the
/// transformer relation and the resulting sets need exponentially many
/// nodes to track the correlations; interleaved, every correlated pair is
/// adjacent and the BDDs stay linear. `Option<X>` siblings group with `X`
/// siblings (their discriminant bits come first).
pub(crate) fn sort_layout(ctx: &crate::ctx::Context, sort: Sort) -> Vec<u32> {
    let mut slots = Vec::new();
    emit_layout(ctx, sort, 0, &mut slots);
    let mut perm = vec![0u32; slots.len()];
    for (k, &p) in slots.iter().enumerate() {
        perm[p as usize] = k as u32;
    }
    perm
}

/// Structural shape of a sort: the list of leaf widths, with options
/// unwrapped at the top level for grouping purposes.
fn shape_of(ctx: &crate::ctx::Context, sort: Sort, out: &mut Vec<u32>) {
    match sort {
        Sort::Bool => out.push(1),
        Sort::BitVec { width, .. } => out.push(width as u32),
        Sort::Struct(id) => {
            let fields: Vec<Sort> = ctx.struct_info(id).fields.iter().map(|f| f.1).collect();
            for f in fields {
                shape_of(ctx, f, out);
            }
        }
    }
}

/// The grouping key of a field: its shape with a top-level `Option`
/// stripped (so `Header` and `Option<Header>` group together).
fn group_key(ctx: &crate::ctx::Context, sort: Sort) -> Vec<u32> {
    let mut key = Vec::new();
    shape_of(ctx, unwrap_option(ctx, sort).1, &mut key);
    key
}

/// If `sort` is an option, `(true, payload)`; else `(false, sort)`.
fn unwrap_option(ctx: &crate::ctx::Context, sort: Sort) -> (bool, Sort) {
    if let Sort::Struct(id) = sort {
        if let crate::sorts::StructKey::Option(p) = ctx.struct_key(id) {
            return (true, *p);
        }
    }
    (false, sort)
}

/// Emit the flat positions of `sort` (absolute, starting at `base`) in
/// slot order; returns the sort's width.
fn emit_layout(ctx: &crate::ctx::Context, sort: Sort, base: u32, out: &mut Vec<u32>) -> u32 {
    match sort {
        Sort::Bool => {
            out.push(base);
            1
        }
        Sort::BitVec { width, .. } => {
            for k in 0..width as u32 {
                out.push(base + k);
            }
            width as u32
        }
        Sort::Struct(id) => {
            let fields: Vec<Sort> = ctx.struct_info(id).fields.iter().map(|f| f.1).collect();
            let widths: Vec<u32> = fields.iter().map(|&f| ctx.sort_bits(f)).collect();
            let mut offsets = Vec::with_capacity(fields.len());
            let mut acc = 0;
            for &w in &widths {
                offsets.push(acc);
                acc += w;
            }
            let keys: Vec<Vec<u32>> = fields.iter().map(|&f| group_key(ctx, f)).collect();
            let mut emitted = vec![false; fields.len()];
            for i in 0..fields.len() {
                if emitted[i] {
                    continue;
                }
                let group: Vec<usize> = (i..fields.len())
                    .filter(|&j| !emitted[j] && keys[j] == keys[i])
                    .collect();
                if group.len() == 1 {
                    emit_layout(ctx, fields[i], base + offsets[i], out);
                    emitted[i] = true;
                    continue;
                }
                // Discriminant bits of option members come first.
                for &j in &group {
                    emitted[j] = true;
                    if unwrap_option(ctx, fields[j]).0 {
                        out.push(base + offsets[j]);
                    }
                }
                // Weave the (payload) bit sequences element-wise.
                let seqs: Vec<Vec<u32>> = group
                    .iter()
                    .map(|&j| {
                        let (is_opt, payload) = unwrap_option(ctx, fields[j]);
                        let pbase = base + offsets[j] + is_opt as u32;
                        let mut s = Vec::new();
                        emit_layout(ctx, payload, pbase, &mut s);
                        s
                    })
                    .collect();
                let len = seqs[0].len();
                debug_assert!(seqs.iter().all(|s| s.len() == len));
                for k in 0..len {
                    for s in &seqs {
                        out.push(s[k]);
                    }
                }
            }
            acc
        }
    }
}

/// A set of values of model type `T`, as a BDD over the canonical even
/// variable block.
pub struct StateSet<T> {
    bdd: Bdd,
    m: Rc<RefCell<BddManager>>,
    width: u32,
    _t: PhantomData<fn() -> T>,
}

impl<T> Clone for StateSet<T> {
    fn clone(&self) -> Self {
        StateSet {
            bdd: self.bdd,
            m: self.m.clone(),
            width: self.width,
            _t: PhantomData,
        }
    }
}

impl<T: ZenType> StateSet<T> {
    fn check_space(&self, other: &StateSet<T>) {
        assert!(
            Rc::ptr_eq(&self.m, &other.m),
            "state sets from different transformer spaces cannot be combined"
        );
    }

    /// Set union.
    pub fn union(&self, other: &StateSet<T>) -> StateSet<T> {
        self.check_space(other);
        let bdd = self.m.borrow_mut().or(self.bdd, other.bdd);
        StateSet {
            bdd,
            ..self.clone()
        }
    }

    /// Set intersection.
    pub fn intersect(&self, other: &StateSet<T>) -> StateSet<T> {
        self.check_space(other);
        let bdd = self.m.borrow_mut().and(self.bdd, other.bdd);
        StateSet {
            bdd,
            ..self.clone()
        }
    }

    /// Set difference.
    pub fn minus(&self, other: &StateSet<T>) -> StateSet<T> {
        self.check_space(other);
        let bdd = self.m.borrow_mut().diff(self.bdd, other.bdd);
        StateSet {
            bdd,
            ..self.clone()
        }
    }

    /// Complement with respect to the full bit space of `T`.
    pub fn complement(&self) -> StateSet<T> {
        let bdd = self.m.borrow_mut().not(self.bdd);
        StateSet {
            bdd,
            ..self.clone()
        }
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.bdd == BDD_FALSE
    }

    /// Is the set the full space?
    pub fn is_full(&self) -> bool {
        self.bdd == BDD_TRUE
    }

    /// Do two sets contain exactly the same states?
    pub fn set_eq(&self, other: &StateSet<T>) -> bool {
        self.check_space(other);
        self.bdd == other.bdd
    }

    /// Is `self` a subset of `other`?
    pub fn subset_of(&self, other: &StateSet<T>) -> bool {
        self.check_space(other);
        self.m.borrow_mut().implies_check(self.bdd, other.bdd)
    }

    /// Number of states in the set (as `f64`; spaces are astronomically
    /// large).
    pub fn count(&self) -> f64 {
        let vars: Vec<u32> = (0..self.width).map(|i| 2 * i).collect();
        self.m.borrow().sat_count_over(self.bdd, &vars)
    }

    /// Extract one element, or `None` if empty.
    pub fn element(&self) -> Option<T> {
        self.element_with_bound(space_bound_guess())
    }

    /// The underlying BDD node (for diagnostics and size measurements).
    pub fn bdd_size(&self) -> usize {
        self.m.borrow().node_count(self.bdd)
    }
}

// The element decoder needs the sort, which for list-containing types
// depends on the bound; sets built from a space use that space's bound.
// We conservatively use bound 4 here (matching `TransformerSpace::new`);
// element extraction for list-containing sorts with non-default bounds
// should go through `element_with_bound`.
fn space_bound_guess() -> u16 {
    4
}

impl<T: ZenType> StateSet<T> {
    /// Extract one element, for sorts whose layout was built with an
    /// explicit list bound.
    pub fn element_with_bound(&self, bound: u16) -> Option<T> {
        let model = self.m.borrow().any_sat(self.bdd)?;
        let mut slot_bits = vec![false; self.width as usize];
        for (level, b) in model {
            if level % 2 == 0 && (level / 2) < self.width {
                slot_bits[(level / 2) as usize] = b;
            }
        }
        let sort = T::sort(bound);
        let v = with_ctx(|ctx| {
            // Undo the layout permutation: flat position p sits at slot
            // perm[p].
            let perm = sort_layout(ctx, sort);
            let bits: Vec<bool> = (0..self.width as usize)
                .map(|p| slot_bits[perm[p] as usize])
                .collect();
            let mut pos = 0usize;
            unflatten(ctx, sort, &bits, &mut pos)
        });
        Some(T::from_value(&v))
    }
}

/// Rebuild a [`Value`] from flattened bits (field order, MSB-first).
fn unflatten(ctx: &crate::ctx::Context, sort: Sort, bits: &[bool], pos: &mut usize) -> Value {
    match sort {
        Sort::Bool => {
            let b = bits[*pos];
            *pos += 1;
            Value::Bool(b)
        }
        Sort::BitVec { width, .. } => {
            let mut out = 0u64;
            for _ in 0..width {
                out = (out << 1) | bits[*pos] as u64;
                *pos += 1;
            }
            Value::int(sort, out)
        }
        Sort::Struct(id) => {
            let sorts: Vec<Sort> = ctx.struct_info(id).fields.iter().map(|f| f.1).collect();
            Value::Struct(
                id,
                sorts
                    .into_iter()
                    .map(|s| unflatten(ctx, s, bits, pos))
                    .collect(),
            )
        }
    }
}

/// The relation `f(x) = y` over interleaved variable blocks; supports
/// forward and reverse image computation.
pub struct StateSetTransformer<A, R> {
    relation: Bdd,
    m: Rc<RefCell<BddManager>>,
    wa: u32,
    wr: u32,
    bound: u16,
    _t: PhantomData<fn(&A) -> R>,
}

impl<A, R> Clone for StateSetTransformer<A, R> {
    fn clone(&self) -> Self {
        StateSetTransformer {
            relation: self.relation,
            m: self.m.clone(),
            wa: self.wa,
            wr: self.wr,
            bound: self.bound,
            _t: PhantomData,
        }
    }
}

impl<A: ZenType, R: ZenType> StateSetTransformer<A, R> {
    fn even_cube(&self, m: &mut BddManager, w: u32) -> Cube {
        let vars: Vec<u32> = (0..w).map(|i| 2 * i).collect();
        m.cube(&vars)
    }

    fn odd_to_even(&self, m: &mut BddManager, w: u32) -> VarMap {
        let pairs: Vec<(u32, u32)> = (0..w).map(|i| (2 * i + 1, 2 * i)).collect();
        m.varmap(&pairs)
    }

    fn even_to_odd(&self, m: &mut BddManager, w: u32) -> VarMap {
        let pairs: Vec<(u32, u32)> = (0..w).map(|i| (2 * i, 2 * i + 1)).collect();
        m.varmap(&pairs)
    }

    /// The image of `set` under the function: `{ f(x) | x ∈ set }`.
    pub fn transform_forward(&self, set: &StateSet<A>) -> StateSet<R> {
        assert!(Rc::ptr_eq(&self.m, &set.m), "set from a different space");
        let mut m = self.m.borrow_mut();
        let cube = self.even_cube(&mut m, self.wa);
        let image_odd = m.and_exists(set.bdd, self.relation, cube);
        let map = self.odd_to_even(&mut m, self.wr);
        let image = m.replace(image_odd, map);
        drop(m);
        StateSet {
            bdd: image,
            m: self.m.clone(),
            width: self.wr,
            _t: PhantomData,
        }
    }

    /// The preimage of `set` under the function: `{ x | f(x) ∈ set }`.
    pub fn transform_reverse(&self, set: &StateSet<R>) -> StateSet<A> {
        assert!(Rc::ptr_eq(&self.m, &set.m), "set from a different space");
        let mut m = self.m.borrow_mut();
        let to_odd = self.even_to_odd(&mut m, self.wr);
        let set_odd = m.replace(set.bdd, to_odd);
        let odd_vars: Vec<u32> = (0..self.wr).map(|i| 2 * i + 1).collect();
        let cube = m.cube(&odd_vars);
        let pre = m.and_exists(self.relation, set_odd, cube);
        drop(m);
        StateSet {
            bdd: pre,
            m: self.m.clone(),
            width: self.wa,
            _t: PhantomData,
        }
    }

    /// Do two transformers denote the same function? (Used by the
    /// Bonsai-style control-plane compression analysis.)
    pub fn relation_eq(&self, other: &StateSetTransformer<A, R>) -> bool {
        assert!(
            Rc::ptr_eq(&self.m, &other.m),
            "transformer from a different space"
        );
        self.relation == other.relation
    }

    /// Size of the relation BDD in nodes (diagnostics).
    pub fn relation_size(&self) -> usize {
        self.m.borrow().node_count(self.relation)
    }
}

impl<A: ZenType> StateSetTransformer<A, A> {
    /// Unbounded model checking (§6 "another backend uses the transformer
    /// API to perform unbounded model checking"): the least fixpoint of
    /// repeated forward images from `initial` — all states reachable in
    /// any number of steps. Termination is guaranteed: the state space is
    /// finite and the iteration is monotone.
    pub fn fixpoint(&self, initial: &StateSet<A>) -> StateSet<A> {
        let mut reach = initial.clone();
        loop {
            let next = reach.union(&self.transform_forward(&reach));
            if next.set_eq(&reach) {
                return reach;
            }
            reach = next;
        }
    }

    /// Can `target` be reached from `initial` in any number of steps?
    /// Stops as soon as the frontier touches the target (no full fixpoint
    /// needed for positive answers).
    pub fn reaches(&self, initial: &StateSet<A>, target: &StateSet<A>) -> bool {
        let mut reach = initial.clone();
        loop {
            if !reach.intersect(target).is_empty() {
                return true;
            }
            let next = reach.union(&self.transform_forward(&reach));
            if next.set_eq(&reach) {
                return false;
            }
            reach = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::reset_ctx;
    use crate::lang::ZenType;

    #[test]
    fn layout_is_identity_for_plain_structs() {
        reset_ctx();
        // (u8, u16) has no same-shaped siblings: identity permutation.
        let sort = <(u8, u16)>::sort(0);
        let perm = with_ctx(|ctx| sort_layout(ctx, sort));
        assert_eq!(perm, (0..24).collect::<Vec<u32>>());
    }

    #[test]
    fn layout_interleaves_same_shaped_siblings() {
        reset_ctx();
        // (u8, u8): the two bytes weave bit-by-bit.
        let sort = <(u8, u8)>::sort(0);
        let perm = with_ctx(|ctx| sort_layout(ctx, sort));
        // Flat position 0 (MSB of field 1) -> slot 0; flat position 8
        // (MSB of field 2) -> slot 1; flat 1 -> slot 2; ...
        assert_eq!(perm[0], 0);
        assert_eq!(perm[8], 1);
        assert_eq!(perm[1], 2);
        assert_eq!(perm[9], 3);
        // Permutation is a bijection.
        let mut seen = perm.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..16).collect::<Vec<u32>>());
    }

    #[test]
    fn layout_groups_option_with_payload_shape() {
        reset_ctx();
        // (u8, Option<u8>): discriminant first, then the two bytes weave.
        let sort = <(u8, Option<u8>)>::sort(0);
        let perm = with_ctx(|ctx| sort_layout(ctx, sort));
        assert_eq!(perm.len(), 17);
        // Flat layout: u8 (0..8), has (8), payload (9..17).
        // Slot layout: has first, then weave.
        assert_eq!(perm[8], 0, "option discriminant comes first");
        assert_eq!(perm[0], 1, "then the first byte's MSB");
        assert_eq!(perm[9], 2, "woven with the payload's MSB");
        let mut seen = perm.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..17).collect::<Vec<u32>>());
    }

    #[test]
    fn sets_with_explicit_bound_decode_lists() {
        reset_ctx();
        let space = TransformerSpace::with_bound(3);
        assert_eq!(space.bound(), 3);
        let s = space.set_of::<Vec<u8>>(|l| {
            l.length()
                .eq(crate::lang::Zen::val(2))
                .and(l.contains(crate::lang::Zen::val(9)))
        });
        let v = s.element_with_bound(3).expect("nonempty");
        assert_eq!(v.len(), 2);
        assert!(v.contains(&9));
    }
}
