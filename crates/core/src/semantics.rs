//! Concrete semantics of the bitvector operators, shared by constant
//! folding, the interpreter, and the bytecode VM so all three agree by
//! construction.

use crate::ir::{Bv2, CmpOp};
use crate::sorts::Sort;
use crate::value::sign_extend;

/// Apply a binary bitvector operator; the result is masked to the width.
///
/// Semantics: `Add`/`Sub`/`Mul` wrap; `Shl` fills with zeros; `Shr` is
/// logical for unsigned sorts and arithmetic for signed sorts; shifting by
/// the width or more yields zero (or all sign bits for arithmetic `Shr`).
pub fn bv_bin(op: Bv2, sort: Sort, a: u64, b: u64) -> u64 {
    let Sort::BitVec { width, signed } = sort else {
        panic!("bv_bin on non-bitvector sort");
    };
    let mask = sort.mask();
    let r = match op {
        Bv2::Add => a.wrapping_add(b),
        Bv2::Sub => a.wrapping_sub(b),
        Bv2::Mul => a.wrapping_mul(b),
        Bv2::And => a & b,
        Bv2::Or => a | b,
        Bv2::Xor => a ^ b,
        Bv2::Shl => {
            if b >= width as u64 {
                0
            } else {
                a << b
            }
        }
        Bv2::Shr => {
            if signed {
                let sa = sign_extend(a, width);
                let amt = b.min(63);
                (sa >> amt) as u64
            } else if b >= width as u64 {
                0
            } else {
                a >> b
            }
        }
    };
    r & mask
}

/// Apply an order comparison; signedness comes from the sort.
pub fn bv_cmp(op: CmpOp, sort: Sort, a: u64, b: u64) -> bool {
    let Sort::BitVec { width, signed } = sort else {
        panic!("bv_cmp on non-bitvector sort");
    };
    if signed {
        let (sa, sb) = (sign_extend(a, width), sign_extend(b, width));
        match op {
            CmpOp::Lt => sa < sb,
            CmpOp::Le => sa <= sb,
        }
    } else {
        match op {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
        }
    }
}

/// Convert bits between bitvector sorts: widening zero-extends unsigned
/// sources and sign-extends signed sources; narrowing truncates.
pub fn bv_cast(from: Sort, to: Sort, bits: u64) -> u64 {
    let (
        Sort::BitVec {
            width: wf,
            signed: sf,
        },
        Sort::BitVec { .. },
    ) = (from, to)
    else {
        panic!("bv_cast on non-bitvector sorts");
    };
    let extended = if sf {
        sign_extend(bits, wf) as u64
    } else {
        bits
    };
    extended & to.mask()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_arithmetic() {
        let s = Sort::bv(8);
        assert_eq!(bv_bin(Bv2::Add, s, 0xFF, 1), 0);
        assert_eq!(bv_bin(Bv2::Sub, s, 0, 1), 0xFF);
        assert_eq!(bv_bin(Bv2::Mul, s, 16, 16), 0);
        assert_eq!(bv_bin(Bv2::Mul, s, 15, 15), 225);
    }

    #[test]
    fn shifts() {
        let u8s = Sort::bv(8);
        assert_eq!(bv_bin(Bv2::Shl, u8s, 1, 7), 0x80);
        assert_eq!(bv_bin(Bv2::Shl, u8s, 1, 8), 0);
        assert_eq!(bv_bin(Bv2::Shr, u8s, 0x80, 7), 1);
        assert_eq!(bv_bin(Bv2::Shr, u8s, 0x80, 8), 0);
        let i8s = Sort::bv_signed(8);
        // Arithmetic shift keeps the sign bit.
        assert_eq!(bv_bin(Bv2::Shr, i8s, 0x80, 1), 0xC0);
        assert_eq!(bv_bin(Bv2::Shr, i8s, 0x80, 100), 0xFF);
        assert_eq!(bv_bin(Bv2::Shr, i8s, 0x40, 100), 0);
    }

    #[test]
    fn comparisons_respect_signedness() {
        let u8s = Sort::bv(8);
        let i8s = Sort::bv_signed(8);
        // 0xFF is 255 unsigned but -1 signed.
        assert!(!bv_cmp(CmpOp::Lt, u8s, 0xFF, 1));
        assert!(bv_cmp(CmpOp::Lt, i8s, 0xFF, 1));
        assert!(bv_cmp(CmpOp::Le, u8s, 5, 5));
        assert!(!bv_cmp(CmpOp::Lt, u8s, 5, 5));
    }

    #[test]
    fn casts() {
        // Zero-extension of unsigned sources.
        assert_eq!(bv_cast(Sort::bv(8), Sort::bv(16), 0xFF), 0x00FF);
        // Sign-extension of signed sources.
        assert_eq!(
            bv_cast(Sort::bv_signed(8), Sort::bv_signed(16), 0xFF),
            0xFFFF
        );
        assert_eq!(bv_cast(Sort::bv_signed(8), Sort::bv(16), 0x7F), 0x7F);
        // Truncation.
        assert_eq!(bv_cast(Sort::bv(16), Sort::bv(8), 0x1234), 0x34);
        assert_eq!(
            bv_cast(Sort::bv_signed(16), Sort::bv_signed(8), 0xFF80),
            0x80
        );
    }

    #[test]
    fn bitwise_ops() {
        let s = Sort::bv(4);
        assert_eq!(bv_bin(Bv2::And, s, 0b1100, 0b1010), 0b1000);
        assert_eq!(bv_bin(Bv2::Or, s, 0b1100, 0b1010), 0b1110);
        assert_eq!(bv_bin(Bv2::Xor, s, 0b1100, 0b1010), 0b0110);
    }
}
