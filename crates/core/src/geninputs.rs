//! Test input generation (§8 "Testing implementations").
//!
//! "Given a Zen function f, `f.GenerateInputs()` produces test inputs with
//! a high-degree of coverage based on symbolic execution." The generator
//! walks the conditional spine of the model's output expression — for an
//! ACL or route-map model, one branch per rule — and solves each path
//! condition with the incremental SAT backend (one solver, one assumption
//! set per path), yielding a concrete input that drives execution down
//! that path. For an ACL this produces exactly the paper's example: "test
//! packets that match on every single rule in the ACL".

use rzen_sat::Lit;

use crate::backend::bitblast::BitCompiler;
use crate::backend::interp::eval;
use crate::backend::smt::{CLit, CnfAlg};
use crate::ctx::with_ctx;
use crate::function::{FindOptions, ZenFunction};
use crate::ir::{Expr, ExprId};
use crate::lang::{Zen, ZenType};
use crate::value::Value;

/// One path through the conditional spine: (condition, required polarity)
/// pairs.
type Path = Vec<(ExprId, bool)>;

/// Enumerate root-to-leaf paths through the `If` spine of `root`, capped
/// at `max_paths`.
fn spine_paths(root: ExprId, max_paths: usize) -> Vec<Path> {
    let mut out: Vec<Path> = Vec::new();
    let mut stack: Vec<(ExprId, Path)> = vec![(root, Vec::new())];
    with_ctx(|ctx| {
        while let Some((e, pc)) = stack.pop() {
            if out.len() >= max_paths {
                break;
            }
            match ctx.expr(e) {
                Expr::If(c, t, f) => {
                    let (c, t, f) = (*c, *t, *f);
                    let mut pt = pc.clone();
                    pt.push((c, true));
                    let mut pf = pc;
                    pf.push((c, false));
                    stack.push((f, pf));
                    stack.push((t, pt));
                }
                _ => out.push(pc),
            }
        }
    });
    out
}

/// Generate up to `max_inputs` distinct concrete inputs covering the
/// model's decision structure.
pub fn generate_inputs<A: ZenType, R: ZenType>(
    f: &ZenFunction<A, R>,
    opts: &FindOptions,
    max_inputs: usize,
) -> Vec<A> {
    let input = Zen::<A>::symbolic(opts.list_bound);
    let out = f.apply(input);
    let paths = spine_paths(out.expr_id(), max_inputs.saturating_mul(2).max(16));

    // Compile every distinct condition once into a shared solver; each
    // path is then a set of assumptions — incremental solving reuses all
    // learnt clauses across paths.
    let mut alg = CnfAlg::new();
    let mut cond_lits: rzen_bdd::FastHashMap<u32, CLit> = rzen_bdd::FastHashMap::default();
    with_ctx(|ctx| {
        let mut compiler = BitCompiler::new(&mut alg);
        for path in &paths {
            for &(c, _) in path {
                cond_lits.entry(c.0).or_insert_with(|| {
                    let sym = compiler.compile(ctx, c);
                    *sym.as_bool()
                });
            }
        }
    });

    let mut results: Vec<A> = Vec::new();
    let mut seen: Vec<Value> = Vec::new();
    for path in paths {
        if results.len() >= max_inputs {
            break;
        }
        let mut assumptions: Vec<Lit> = Vec::new();
        let mut infeasible = false;
        for (c, want) in path {
            match cond_lits[&c.0] {
                CLit::T => infeasible |= !want,
                CLit::F => infeasible |= want,
                CLit::L(l) => assumptions.push(if want { l } else { !l }),
            }
        }
        if infeasible {
            continue;
        }
        if !alg.solver.solve_with_assumptions(&assumptions) {
            continue;
        }
        let env = with_ctx(|ctx| crate::backend::smt::extract_env(ctx, &alg));
        let v = with_ctx(|ctx| eval(ctx, input.expr_id(), &env));
        if seen.contains(&v) {
            continue;
        }
        seen.push(v.clone());
        results.push(A::from_value(&v));
    }
    results
}
