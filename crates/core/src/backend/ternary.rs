//! The ternary abstract-interpretation backend.
//!
//! Evaluates circuits over three-valued bits `{0, 1, *}` (Kleene logic):
//! any variable bit left unbound is `*` (unknown), and the result reports
//! what is *definitely* true or false regardless of the unknowns. This is
//! the abstraction behind HSA's ternary simulation and Shapeshifter-style
//! abstract interpretation of control planes (Table 1) — fast, sound, and
//! incomplete.
//!
//! Because "known" inputs are simply modeled as constants in the
//! expression (everything a `Zen` model already supports), the public API
//! needs no separate notion of a partial input: build the expression with
//! constants where values are known and symbolic values where they are
//! not, then evaluate.

use crate::backend::bitblast::{BitCompiler, SymVal};
use crate::backend::boolalg::BoolAlg;
use crate::backend::interp::Env;
use crate::ctx::Context;
use crate::ir::{ExprId, VarId};
use crate::sorts::Sort;
use crate::value::Value;

/// A three-valued bit: `Some(b)` is known, `None` is unknown.
pub type Bit3 = Option<bool>;

/// The [`BoolAlg`] over three-valued bits, with an optional environment of
/// known variable values.
pub struct TernaryAlg<'e> {
    env: Option<&'e Env>,
}

impl<'e> TernaryAlg<'e> {
    /// All variables unknown.
    pub fn new() -> Self {
        TernaryAlg { env: None }
    }

    /// Variables bound in `env` are known; the rest are unknown.
    pub fn with_env(env: &'e Env) -> Self {
        TernaryAlg { env: Some(env) }
    }
}

impl Default for TernaryAlg<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl BoolAlg for TernaryAlg<'_> {
    type B = Bit3;

    fn lit(&mut self, b: bool) -> Bit3 {
        Some(b)
    }

    fn var_bit(&mut self, var: VarId, bit: u32) -> Bit3 {
        let env = self.env?;
        let val = env.get(var)?;
        match val {
            Value::Bool(b) => Some(*b),
            Value::Int { bits, .. } => Some(bits >> bit & 1 == 1),
            Value::Struct(..) => unreachable!("variables are primitive"),
        }
    }

    fn not(&mut self, a: &Bit3) -> Bit3 {
        a.map(|b| !b)
    }

    fn and(&mut self, a: &Bit3, b: &Bit3) -> Bit3 {
        match (a, b) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), x) | (x, Some(true)) => *x,
            _ => None,
        }
    }

    fn or(&mut self, a: &Bit3, b: &Bit3) -> Bit3 {
        match (a, b) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), x) | (x, Some(false)) => *x,
            _ => None,
        }
    }

    fn const_of(&self, b: &Bit3) -> Option<bool> {
        *b
    }
}

/// A ternary evaluation result.
#[derive(Clone, Debug)]
pub struct Ternary {
    sym: std::rc::Rc<SymVal<Bit3>>,
    sort: Sort,
}

impl Ternary {
    /// If all bits are known, the concrete value.
    pub fn concrete(&self, ctx: &Context) -> Option<Value> {
        concretize(ctx, &self.sym, self.sort)
    }

    /// For boolean results: definitely true / definitely false / unknown.
    pub fn bool3(&self) -> Bit3 {
        *self.sym.as_bool()
    }

    /// The raw three-valued bits.
    pub fn sym(&self) -> &SymVal<Bit3> {
        &self.sym
    }
}

fn concretize(ctx: &Context, s: &SymVal<Bit3>, sort: Sort) -> Option<Value> {
    match (s, sort) {
        (SymVal::Bool(b), Sort::Bool) => b.map(Value::Bool),
        (SymVal::Bv(bits), Sort::BitVec { .. }) => {
            let mut out = 0u64;
            for (i, b) in bits.iter().enumerate() {
                if (*b)? {
                    out |= 1 << i;
                }
            }
            Some(Value::int(sort, out))
        }
        (SymVal::Struct(fs), Sort::Struct(id)) => {
            let sorts: Vec<Sort> = ctx.struct_info(id).fields.iter().map(|f| f.1).collect();
            let vals: Option<Vec<Value>> = fs
                .iter()
                .zip(sorts)
                .map(|(f, fs_sort)| concretize(ctx, f, fs_sort))
                .collect();
            Some(Value::Struct(id, vals?))
        }
        _ => unreachable!("sort/shape mismatch"),
    }
}

/// Ternary-evaluate an expression; variables bound in `env` are known,
/// the rest are `*`.
pub fn eval(ctx: &Context, root: ExprId, env: Option<&Env>) -> Ternary {
    let mut alg = match env {
        Some(e) => TernaryAlg::with_env(e),
        None => TernaryAlg::new(),
    };
    let mut compiler = BitCompiler::new(&mut alg);
    let sym = compiler.compile(ctx, root);
    Ternary {
        sym,
        sort: ctx.sort_of(root),
    }
}

/// Shortcut: ternary truth value of a boolean expression with all
/// variables unknown.
pub fn eval_bool3(ctx: &Context, root: ExprId) -> Bit3 {
    assert_eq!(ctx.sort_of(root), Sort::Bool);
    eval(ctx, root, None).bool3()
}
