//! The BDD solver backend.

use rzen_bdd::{Bdd, BddManager, BddStats, BDD_FALSE, BDD_TRUE};

use crate::backend::bitblast::BitCompiler;
use crate::backend::boolalg::BoolAlg;
use crate::backend::interp::Env;
use crate::backend::ordering::{compute_order, VarOrder};
use crate::backend::SolveOutcome;
use crate::budget::Budget;
use crate::ctx::Context;
use crate::ir::{ExprId, VarId};
use crate::sorts::Sort;
use crate::value::Value;

/// The [`BoolAlg`] over BDD nodes. Variable bits are placed according to a
/// precomputed [`VarOrder`].
pub struct BddAlg<'m> {
    /// The underlying manager.
    pub m: &'m mut BddManager,
    /// The (mutable — unseen bits get fresh levels) variable order.
    pub order: VarOrder,
}

impl BoolAlg for BddAlg<'_> {
    type B = Bdd;

    fn lit(&mut self, b: bool) -> Bdd {
        self.m.constant(b)
    }

    fn var_bit(&mut self, var: VarId, bit: u32) -> Bdd {
        let level = self.order.level(var, bit);
        self.m.var(level)
    }

    fn not(&mut self, a: &Bdd) -> Bdd {
        self.m.not(*a)
    }

    fn and(&mut self, a: &Bdd, b: &Bdd) -> Bdd {
        self.m.and(*a, *b)
    }

    fn or(&mut self, a: &Bdd, b: &Bdd) -> Bdd {
        self.m.or(*a, *b)
    }

    fn xor(&mut self, a: &Bdd, b: &Bdd) -> Bdd {
        self.m.xor(*a, *b)
    }

    fn ite(&mut self, c: &Bdd, t: &Bdd, e: &Bdd) -> Bdd {
        self.m.ite(*c, *t, *e)
    }

    fn const_of(&self, b: &Bdd) -> Option<bool> {
        match *b {
            BDD_TRUE => Some(true),
            BDD_FALSE => Some(false),
            _ => None,
        }
    }
}

/// Solve a boolean expression: find a satisfying assignment for its
/// variables, or `None` if it is unsatisfiable. `use_interactions` enables
/// the §6 variable-ordering interaction analysis (disable only for the
/// ordering ablation bench).
pub fn solve(ctx: &Context, root: ExprId, use_interactions: bool) -> Option<Env> {
    match solve_budgeted(ctx, root, use_interactions, &Budget::unlimited()).0 {
        SolveOutcome::Sat(env) => Some(env),
        SolveOutcome::Unsat => None,
        SolveOutcome::Cancelled => unreachable!("unlimited budget cannot cancel"),
    }
}

/// [`solve`] under a cooperative [`Budget`], also reporting the manager's
/// substrate counters. The budget is polled inside the manager's
/// hash-consing choke point, so even a single huge conjunction unwinds
/// promptly once the flag is raised or the deadline passes.
pub fn solve_budgeted(
    ctx: &Context,
    root: ExprId,
    use_interactions: bool,
    budget: &Budget,
) -> (SolveOutcome, BddStats) {
    assert_eq!(ctx.sort_of(root), Sort::Bool, "solve: root must be Bool");
    let _span = rzen_obs::span!("bdd.solve", "root" => root.0);
    let order = {
        let _span = rzen_obs::span!("bdd.order");
        compute_order(ctx, &[root], use_interactions)
    };
    let mut m = BddManager::new();
    m.set_budget(Some(budget.cancel_flag()), budget.deadline());
    let mut alg = BddAlg { m: &mut m, order };
    let mut compiler = BitCompiler::new(&mut alg);
    let sym = compiler.compile(ctx, root);
    let b = *sym.as_bool();
    let order = alg.order;
    let stats = m.stats();
    flush_obs_stats(&stats);
    if m.interrupted() {
        // In-flight handles are meaningless once interrupted; the manager
        // is dropped without reading them.
        return (SolveOutcome::Cancelled, stats);
    }
    let sat_model = {
        let _span = rzen_obs::span!("bdd.any_sat");
        m.any_sat(b)
    };
    let Some(model) = sat_model else {
        return (SolveOutcome::Unsat, stats);
    };
    // Partial model: levels on the satisfying path. Translate back to
    // variable bits; everything else defaults to zero.
    let mut level_bits: rzen_bdd::FastHashMap<u32, bool> = rzen_bdd::FastHashMap::default();
    for (level, val) in model {
        level_bits.insert(level, val);
    }
    let env = env_from_levels(ctx, &order, |level| {
        level_bits.get(&level).copied().unwrap_or(false)
    });
    (SolveOutcome::Sat(env), stats)
}

/// Fold the manager's substrate counters into the global metrics registry.
/// Called once per solve, never inside the hash-consing hot loop.
fn flush_obs_stats(stats: &BddStats) {
    rzen_obs::counter!("bdd.solves", "BDD backend solve calls").inc();
    rzen_obs::counter!("bdd.nodes", "BDD nodes allocated (summed over solves)")
        .add(stats.nodes as u64);
    rzen_obs::counter!("bdd.opcache.lookups", "op-cache probes").add(stats.cache_lookups);
    rzen_obs::counter!("bdd.opcache.hits", "op-cache probes that hit").add(stats.cache_hits);
    rzen_obs::histogram!("bdd.unique.entries", "unique-table entries at end of solve")
        .observe(stats.unique_entries as u64);
}

/// Build an [`Env`] by reading each ordered variable bit through `bit_at`.
pub(crate) fn env_from_levels(
    ctx: &Context,
    order: &VarOrder,
    bit_at: impl Fn(u32) -> bool,
) -> Env {
    let mut acc: rzen_bdd::FastHashMap<u32, u64> = rzen_bdd::FastHashMap::default();
    for (var, bit, level) in order.assignments() {
        if bit_at(level) {
            *acc.entry(var.0).or_insert(0) |= 1u64 << bit;
        } else {
            acc.entry(var.0).or_insert(0);
        }
    }
    let mut env = Env::new();
    for (var_idx, bits) in acc {
        let var = VarId(var_idx);
        let sort = ctx.var_sort(var);
        let val = match sort {
            Sort::Bool => Value::Bool(bits & 1 == 1),
            Sort::BitVec { .. } => Value::int(sort, bits),
            Sort::Struct(_) => unreachable!(),
        };
        env.bind(var, val);
    }
    env
}

/// Compile a boolean expression to a BDD in a caller-provided manager with
/// a caller-provided order (used by the state-set machinery and the
/// baseline comparisons).
pub fn compile_bool(
    ctx: &Context,
    m: &mut BddManager,
    order: VarOrder,
    root: ExprId,
) -> (Bdd, VarOrder) {
    let mut alg = BddAlg { m, order };
    let mut compiler = BitCompiler::new(&mut alg);
    let sym = compiler.compile(ctx, root);
    let b = *sym.as_bool();
    (b, alg.order)
}
