//! Analysis backends.
//!
//! The paper's central architectural claim is that one modeling language
//! can serve many solvers. Here that is made literal: a single bit-level
//! compiler ([`bitblast`]) translates the IR into Boolean circuits over an
//! abstract Boolean algebra ([`boolalg::BoolAlg`]), and each solver backend
//! is just an implementation of that algebra:
//!
//! * [`bdd`] — circuits over BDD nodes (with the §6 variable-ordering
//!   interaction analysis),
//! * [`smt`] — circuits over CNF literals, Tseitin-encoded and solved with
//!   the CDCL solver (the paper's "bitvectors, then bitblast to SAT"
//!   pipeline),
//! * [`ternary`] — circuits over three-valued bits (fast abstract
//!   interpretation, HSA-style ternary simulation).
//!
//! Orthogonally, [`interp`] evaluates the IR directly on concrete values
//! (simulation), and [`compile`] lowers it to a register bytecode VM for
//! repeated concrete execution (the paper's §8 "synthesizing
//! implementations").

pub mod bdd;
pub mod bitblast;
pub mod boolalg;
pub mod compile;
pub mod interp;
pub mod ordering;
pub mod smt;
pub mod ternary;

/// Result of a budgeted satisfiability query against either backend.
#[derive(Clone, Debug)]
pub enum SolveOutcome {
    /// Satisfiable, with a model binding every mentioned variable.
    Sat(interp::Env),
    /// Proven unsatisfiable.
    Unsat,
    /// The budget's flag was raised or its deadline passed before the
    /// solver reached a verdict. Never returned under an unlimited budget.
    Cancelled,
}

impl SolveOutcome {
    /// Is this a decisive (`Sat`/`Unsat`) verdict?
    pub fn is_decisive(&self) -> bool {
        !matches!(self, SolveOutcome::Cancelled)
    }
}
