//! The bit-level compiler: IR expressions → Boolean circuits over an
//! abstract [`BoolAlg`].
//!
//! This is the single translation shared by the BDD, SAT, and ternary
//! backends. Bitvectors become little-endian bit vectors; structs become
//! trees of bit vectors; arithmetic becomes ripple-carry/shift-add
//! circuits; comparisons become MSB-first comparator chains.
//!
//! The compiler is iterative (explicit work stack) because network models
//! routinely produce conditionals nested tens of thousands deep (a 15,000
//! line ACL is a 15,000-deep `if` chain) — recursing would overflow the
//! stack.

use std::rc::Rc;

use rzen_bdd::FastHashMap;

use crate::backend::boolalg::BoolAlg;
use crate::ctx::Context;
use crate::ir::{Bv2, CmpOp, Expr, ExprId};
use crate::sorts::Sort;

/// A compiled symbolic value: the circuit-level image of an expression.
#[derive(Clone, Debug)]
pub enum SymVal<B> {
    /// A single Boolean.
    Bool(B),
    /// A bitvector, least-significant bit first.
    Bv(Vec<B>),
    /// A struct, one entry per field.
    Struct(Vec<Rc<SymVal<B>>>),
}

impl<B: Clone> SymVal<B> {
    /// The Boolean, for `Bool` values.
    pub fn as_bool(&self) -> &B {
        match self {
            SymVal::Bool(b) => b,
            _ => panic!("expected Bool SymVal"),
        }
    }

    /// The bits, for `Bv` values.
    pub fn as_bits(&self) -> &[B] {
        match self {
            SymVal::Bv(bits) => bits,
            _ => panic!("expected Bv SymVal"),
        }
    }

    /// The fields, for `Struct` values.
    pub fn as_struct(&self) -> &[Rc<SymVal<B>>] {
        match self {
            SymVal::Struct(fs) => fs,
            _ => panic!("expected Struct SymVal"),
        }
    }

    /// Flatten to a single bit list (field order; bitvectors MSB-first so
    /// the flattened layout matches the variable-ordering convention).
    pub fn flatten(&self, out: &mut Vec<B>) {
        match self {
            SymVal::Bool(b) => out.push(b.clone()),
            SymVal::Bv(bits) => out.extend(bits.iter().rev().cloned()),
            SymVal::Struct(fs) => {
                for f in fs {
                    f.flatten(out);
                }
            }
        }
    }
}

/// Compile an expression to a circuit over `alg`. Results are memoized per
/// node, so shared subexpressions are compiled once.
pub struct BitCompiler<'a, A: BoolAlg> {
    alg: &'a mut A,
    cache: FastHashMap<u32, Rc<SymVal<A::B>>>,
    /// Keys inserted by *this* compiler (as opposed to seed entries).
    inserted: FastHashMap<u32, ()>,
    /// Seed keys this compiler looked up (with possible duplicates). Note
    /// a hit on a cached node does *not* descend into its children, so a
    /// sub-DAG reached only through cached parents is never touched —
    /// sessions exploit exactly that to age out interior circuit nodes.
    touched: Vec<u32>,
    seed_hits: u64,
}

impl<'a, A: BoolAlg> BitCompiler<'a, A> {
    /// Create a compiler over the given algebra.
    pub fn new(alg: &'a mut A) -> Self {
        Self::with_seed_cache(alg, FastHashMap::default())
    }

    /// Create a compiler seeded with a node cache carried over from
    /// earlier queries in a solver session. Seed entries are reused
    /// without recompiling — sound because `ExprId`s are hash-consed and
    /// stable for the lifetime of the thread-local context — and
    /// [`BitCompiler::seed_hits`] counts how often that happens.
    pub fn with_seed_cache(alg: &'a mut A, cache: FastHashMap<u32, Rc<SymVal<A::B>>>) -> Self {
        BitCompiler {
            alg,
            cache,
            inserted: FastHashMap::default(),
            touched: Vec::new(),
            seed_hits: 0,
        }
    }

    /// Hand the (grown) node cache back to the session for the next query.
    pub fn into_cache(self) -> FastHashMap<u32, Rc<SymVal<A::B>>> {
        self.cache
    }

    /// Node lookups served by seed entries (entries that predate this
    /// compiler) — the cross-query reuse counter.
    pub fn seed_hits(&self) -> u64 {
        self.seed_hits
    }

    /// Nodes compiled (newly inserted) by this compiler.
    pub fn compiled(&self) -> usize {
        self.inserted.len()
    }

    /// Drain the keys this compiler inserted, so a session can evict them
    /// after an interrupted BDD compile (whose in-flight node handles are
    /// garbage by the manager's budget contract).
    pub fn take_inserted(&mut self) -> Vec<u32> {
        self.inserted.drain().map(|(k, ())| k).collect()
    }

    /// Drain the seed keys this compiler looked up (may contain
    /// duplicates). Together with [`BitCompiler::take_inserted`] this is
    /// the set of cache entries the query used — what a session's
    /// recency-based cache eviction keeps alive.
    pub fn take_touched(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.touched)
    }

    /// Access the underlying algebra.
    pub fn alg(&mut self) -> &mut A {
        self.alg
    }

    /// Compile `root` (and everything it references).
    pub fn compile(&mut self, ctx: &Context, root: ExprId) -> Rc<SymVal<A::B>> {
        let _span = rzen_obs::span!("bitblast.compile", "root" => root.0);
        let cached_before = self.cache.len();
        enum Task {
            Visit(ExprId),
            Build(ExprId),
        }
        let mut stack = vec![Task::Visit(root)];
        while let Some(task) = stack.pop() {
            match task {
                Task::Visit(e) => {
                    if self.cache.contains_key(&e.0) {
                        if !self.inserted.contains_key(&e.0) {
                            self.seed_hits += 1;
                            self.touched.push(e.0);
                        }
                        continue;
                    }
                    stack.push(Task::Build(e));
                    for c in children(ctx, e) {
                        if self.cache.contains_key(&c.0) {
                            if !self.inserted.contains_key(&c.0) {
                                self.seed_hits += 1;
                                self.touched.push(c.0);
                            }
                        } else {
                            stack.push(Task::Visit(c));
                        }
                    }
                }
                Task::Build(e) => {
                    if self.cache.contains_key(&e.0) {
                        continue;
                    }
                    let v = self.build(ctx, e);
                    self.cache.insert(e.0, v);
                    self.inserted.insert(e.0, ());
                }
            }
        }
        rzen_obs::counter!("bitblast.exprs", "IR expressions lowered to circuits")
            .add((self.cache.len() - cached_before) as u64);
        self.cache[&root.0].clone()
    }

    fn get(&self, e: ExprId) -> Rc<SymVal<A::B>> {
        self.cache[&e.0].clone()
    }

    fn build(&mut self, ctx: &Context, e: ExprId) -> Rc<SymVal<A::B>> {
        let alg = &mut *self.alg;
        match ctx.expr(e) {
            Expr::Var(v) => {
                let v = *v;
                match ctx.var_sort(v) {
                    Sort::Bool => Rc::new(SymVal::Bool(alg.var_bit(v, 0))),
                    Sort::BitVec { width, .. } => {
                        let bits = (0..width as u32).map(|i| alg.var_bit(v, i)).collect();
                        Rc::new(SymVal::Bv(bits))
                    }
                    Sort::Struct(_) => unreachable!("variables are primitive"),
                }
            }
            Expr::ConstBool(b) => Rc::new(SymVal::Bool(alg.lit(*b))),
            Expr::ConstInt { sort, bits } => {
                let Sort::BitVec { width, .. } = sort else {
                    unreachable!()
                };
                let bs = (0..*width as u32)
                    .map(|i| alg.lit(bits >> i & 1 == 1))
                    .collect();
                Rc::new(SymVal::Bv(bs))
            }
            Expr::Not(a) => {
                let a = self.get(*a);
                Rc::new(SymVal::Bool(self.alg.not(a.as_bool())))
            }
            Expr::And(a, b) => {
                let (a, b) = (self.get(*a), self.get(*b));
                Rc::new(SymVal::Bool(self.alg.and(a.as_bool(), b.as_bool())))
            }
            Expr::Or(a, b) => {
                let (a, b) = (self.get(*a), self.get(*b));
                Rc::new(SymVal::Bool(self.alg.or(a.as_bool(), b.as_bool())))
            }
            Expr::BvNot(a) => {
                let a = self.get(*a);
                let bits = a.as_bits().iter().map(|x| self.alg.not(x)).collect();
                Rc::new(SymVal::Bv(bits))
            }
            Expr::Bv(op, a, b) => {
                let sort = ctx.sort_of(*a);
                let (a, b) = (self.get(*a), self.get(*b));
                let bits = self.bv_op(*op, sort, a.as_bits(), b.as_bits());
                Rc::new(SymVal::Bv(bits))
            }
            Expr::Eq(a, b) => {
                let (a, b) = (self.get(*a), self.get(*b));
                let mut fa = Vec::new();
                let mut fb = Vec::new();
                a.flatten(&mut fa);
                b.flatten(&mut fb);
                debug_assert_eq!(fa.len(), fb.len());
                let mut acc = self.alg.lit(true);
                for (x, y) in fa.iter().zip(&fb) {
                    let eq = self.alg.iff(x, y);
                    acc = self.alg.and(&acc, &eq);
                }
                Rc::new(SymVal::Bool(acc))
            }
            Expr::Cmp(op, a, b) => {
                let sort = ctx.sort_of(*a);
                let Sort::BitVec { signed, .. } = sort else {
                    unreachable!()
                };
                let (a, b) = (self.get(*a), self.get(*b));
                let r = self.compare(*op, signed, a.as_bits(), b.as_bits());
                Rc::new(SymVal::Bool(r))
            }
            Expr::If(c, t, f) => {
                let c = self.get(*c);
                let (t, f) = (self.get(*t), self.get(*f));
                self.mux(c.as_bool().clone(), &t, &f)
            }
            Expr::MakeStruct(_, fs) => {
                let fields = fs.iter().map(|&f| self.get(f)).collect();
                Rc::new(SymVal::Struct(fields))
            }
            Expr::GetField(a, idx) => {
                let a = self.get(*a);
                a.as_struct()[*idx as usize].clone()
            }
            Expr::Cast(a, to) => {
                let from = ctx.sort_of(*a);
                let Sort::BitVec { signed, .. } = from else {
                    unreachable!()
                };
                let Sort::BitVec { width: wt, .. } = *to else {
                    unreachable!()
                };
                let a = self.get(*a);
                let src = a.as_bits();
                let fill = if signed {
                    src[src.len() - 1].clone()
                } else {
                    self.alg.lit(false)
                };
                let bits = (0..wt as usize)
                    .map(|i| src.get(i).cloned().unwrap_or_else(|| fill.clone()))
                    .collect();
                Rc::new(SymVal::Bv(bits))
            }
        }
    }

    fn mux(&mut self, c: A::B, t: &Rc<SymVal<A::B>>, f: &Rc<SymVal<A::B>>) -> Rc<SymVal<A::B>> {
        // Short-circuit constant conditions: the whole branch is shared,
        // not rebuilt.
        match self.alg.const_of(&c) {
            Some(true) => return t.clone(),
            Some(false) => return f.clone(),
            None => {}
        }
        match (&**t, &**f) {
            (SymVal::Bool(a), SymVal::Bool(b)) => Rc::new(SymVal::Bool(self.alg.ite(&c, a, b))),
            (SymVal::Bv(ta), SymVal::Bv(fb)) => {
                debug_assert_eq!(ta.len(), fb.len());
                let bits = ta
                    .iter()
                    .zip(fb)
                    .map(|(x, y)| self.alg.ite(&c, x, y))
                    .collect();
                Rc::new(SymVal::Bv(bits))
            }
            (SymVal::Struct(ta), SymVal::Struct(fb)) => {
                debug_assert_eq!(ta.len(), fb.len());
                let fields = ta
                    .iter()
                    .zip(fb)
                    .map(|(x, y)| self.mux(c.clone(), x, y))
                    .collect();
                Rc::new(SymVal::Struct(fields))
            }
            _ => panic!("mux over mismatched shapes"),
        }
    }

    fn bv_op(&mut self, op: Bv2, sort: Sort, a: &[A::B], b: &[A::B]) -> Vec<A::B> {
        let Sort::BitVec { signed, .. } = sort else {
            unreachable!()
        };
        match op {
            Bv2::And => a.iter().zip(b).map(|(x, y)| self.alg.and(x, y)).collect(),
            Bv2::Or => a.iter().zip(b).map(|(x, y)| self.alg.or(x, y)).collect(),
            Bv2::Xor => a.iter().zip(b).map(|(x, y)| self.alg.xor(x, y)).collect(),
            Bv2::Add => {
                let zero = self.alg.lit(false);
                self.adder(a, b, zero).0
            }
            Bv2::Sub => {
                // a - b = a + ¬b + 1
                let nb: Vec<A::B> = b.iter().map(|x| self.alg.not(x)).collect();
                let one = self.alg.lit(true);
                self.adder(a, &nb, one).0
            }
            Bv2::Mul => {
                let w = a.len();
                let mut acc: Vec<A::B> = (0..w).map(|_| self.alg.lit(false)).collect();
                for (i, bi) in b.iter().enumerate() {
                    // Partial product: (a << i) gated by b[i].
                    let mut pp: Vec<A::B> = (0..w).map(|_| self.alg.lit(false)).collect();
                    for j in 0..w - i {
                        pp[i + j] = self.alg.and(&a[j], bi);
                    }
                    let zero = self.alg.lit(false);
                    acc = self.adder(&acc, &pp, zero).0;
                }
                acc
            }
            Bv2::Shl => self.shifter(a, b, false, false),
            Bv2::Shr => self.shifter(a, b, true, signed),
        }
    }

    /// Ripple-carry adder; returns (sum bits, carry-out).
    fn adder(&mut self, a: &[A::B], b: &[A::B], carry_in: A::B) -> (Vec<A::B>, A::B) {
        debug_assert_eq!(a.len(), b.len());
        let mut carry = carry_in;
        let mut out = Vec::with_capacity(a.len());
        for (x, y) in a.iter().zip(b) {
            let xy = self.alg.xor(x, y);
            let sum = self.alg.xor(&xy, &carry);
            // carry' = (x ∧ y) ∨ (carry ∧ (x ⊕ y))
            let c1 = self.alg.and(x, y);
            let c2 = self.alg.and(&carry, &xy);
            carry = self.alg.or(&c1, &c2);
            out.push(sum);
        }
        (out, carry)
    }

    /// Barrel shifter by a symbolic amount. `right` selects direction;
    /// `arith` fills with the sign bit instead of zero (arithmetic right
    /// shift). Shifting by ≥ width yields the fill bit everywhere.
    fn shifter(&mut self, a: &[A::B], amount: &[A::B], right: bool, arith: bool) -> Vec<A::B> {
        let w = a.len();
        let fill = if arith {
            a[w - 1].clone()
        } else {
            self.alg.lit(false)
        };
        let mut cur: Vec<A::B> = a.to_vec();
        // Stages for amount bits that shift within the width.
        let stages = usize::BITS - (w - 1).leading_zeros(); // ceil(log2(w)), w >= 1
        for (k, amount_bit) in amount.iter().enumerate() {
            let bit = &amount_bit.clone();
            if (k as u32) < stages {
                let sh = 1usize << k;
                let shifted: Vec<A::B> = (0..w)
                    .map(|i| {
                        let src = if right {
                            i.checked_add(sh).filter(|&s| s < w)
                        } else {
                            i.checked_sub(sh)
                        };
                        match src {
                            Some(s) => cur[s].clone(),
                            None => fill.clone(),
                        }
                    })
                    .collect();
                cur = (0..w)
                    .map(|i| self.alg.ite(bit, &shifted[i], &cur[i]))
                    .collect();
            } else {
                // This amount bit alone shifts everything out.
                cur = (0..w).map(|i| self.alg.ite(bit, &fill, &cur[i])).collect();
            }
        }
        cur
    }

    /// MSB-first magnitude comparator.
    fn compare(&mut self, op: CmpOp, signed: bool, a: &[A::B], b: &[A::B]) -> A::B {
        // Signed comparison = unsigned comparison with the sign bit
        // flipped on both operands.
        let w = a.len();
        let (a, b): (Vec<A::B>, Vec<A::B>) = if signed {
            let mut a2 = a.to_vec();
            let mut b2 = b.to_vec();
            a2[w - 1] = self.alg.not(&a[w - 1]);
            b2[w - 1] = self.alg.not(&b[w - 1]);
            (a2, b2)
        } else {
            (a.to_vec(), b.to_vec())
        };
        let mut lt = self.alg.lit(false);
        let mut eq = self.alg.lit(true);
        for i in (0..w).rev() {
            let na = self.alg.not(&a[i]);
            let here = self.alg.and(&na, &b[i]);
            let here = self.alg.and(&eq, &here);
            lt = self.alg.or(&lt, &here);
            let same = self.alg.iff(&a[i], &b[i]);
            eq = self.alg.and(&eq, &same);
        }
        match op {
            CmpOp::Lt => lt,
            CmpOp::Le => self.alg.or(&lt, &eq),
        }
    }
}

/// The direct children of a node.
pub(crate) fn children(ctx: &Context, e: ExprId) -> Vec<ExprId> {
    match ctx.expr(e) {
        Expr::Var(_) | Expr::ConstBool(_) | Expr::ConstInt { .. } => vec![],
        Expr::Not(a) | Expr::BvNot(a) | Expr::GetField(a, _) | Expr::Cast(a, _) => vec![*a],
        Expr::And(a, b)
        | Expr::Or(a, b)
        | Expr::Bv(_, a, b)
        | Expr::Eq(a, b)
        | Expr::Cmp(_, a, b) => vec![*a, *b],
        Expr::If(c, t, f) => vec![*c, *t, *f],
        Expr::MakeStruct(_, fs) => fs.to_vec(),
    }
}
