//! The abstract Boolean algebra that solver backends implement.

use crate::ir::VarId;

/// A Boolean algebra: the interface between the bit-level compiler and a
/// concrete solver representation (BDD nodes, CNF literals, ternary bits).
pub trait BoolAlg {
    /// The representation of a Boolean function.
    type B: Clone;

    /// A constant.
    fn lit(&mut self, b: bool) -> Self::B;

    /// Bit `bit` of symbolic variable `var` (bit 0 = least significant;
    /// booleans use bit 0). How this maps onto solver variables is the
    /// backend's choice — the BDD backend consults its variable order, the
    /// SAT backend allocates literals on demand.
    fn var_bit(&mut self, var: VarId, bit: u32) -> Self::B;

    /// Negation.
    fn not(&mut self, a: &Self::B) -> Self::B;

    /// Conjunction.
    fn and(&mut self, a: &Self::B, b: &Self::B) -> Self::B;

    /// Disjunction.
    fn or(&mut self, a: &Self::B, b: &Self::B) -> Self::B;

    /// Exclusive or.
    fn xor(&mut self, a: &Self::B, b: &Self::B) -> Self::B {
        let na = self.not(a);
        let nb = self.not(b);
        let x = self.and(a, &nb);
        let y = self.and(&na, b);
        self.or(&x, &y)
    }

    /// If-then-else. The default builds it from the other connectives and
    /// short-circuits constant conditions; backends with a native `ite`
    /// (BDDs) override it.
    fn ite(&mut self, c: &Self::B, t: &Self::B, e: &Self::B) -> Self::B {
        match self.const_of(c) {
            Some(true) => t.clone(),
            Some(false) => e.clone(),
            None => {
                let nc = self.not(c);
                let x = self.and(c, t);
                let y = self.and(&nc, e);
                self.or(&x, &y)
            }
        }
    }

    /// If `b` is a known constant, which one (used for short-circuiting).
    fn const_of(&self, b: &Self::B) -> Option<bool>;

    /// Biconditional.
    fn iff(&mut self, a: &Self::B, b: &Self::B) -> Self::B {
        let x = self.xor(a, b);
        self.not(&x)
    }
}
