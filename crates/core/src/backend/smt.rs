//! The SMT-style solver backend: eager bitvector bitblasting to CNF,
//! solved by the CDCL engine in `rzen-sat`.
//!
//! The paper's SMT backend "encodes all primitive operations using the
//! theory of bitvectors before bitblasting the formulas to SAT" via Z3
//! (§6). No Z3 exists in this environment, so the same eager pipeline is
//! implemented directly: the shared bit-level compiler produces circuits
//! over [`CLit`]s, Tseitin-encoding each gate as it goes.

use rzen_bdd::FastHashMap;
use rzen_sat::{Lit, SolveStatus, Solver, Stats};

use crate::backend::bitblast::BitCompiler;
use crate::backend::boolalg::BoolAlg;
use crate::backend::interp::Env;
use crate::backend::SolveOutcome;
use crate::budget::Budget;
use crate::ctx::Context;
use crate::ir::{ExprId, VarId};
use crate::sorts::Sort;
use crate::value::Value;

/// A CNF-level Boolean: a constant or a literal over the solver.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CLit {
    /// Constant true.
    T,
    /// Constant false.
    F,
    /// A solver literal.
    L(Lit),
}

/// The [`BoolAlg`] over CNF literals. Every gate allocates a fresh output
/// variable and asserts its Tseitin definition.
pub struct CnfAlg {
    /// The underlying CDCL solver.
    pub solver: Solver,
    varmap: FastHashMap<(u32, u32), Lit>,
}

impl CnfAlg {
    /// Fresh algebra over a fresh solver.
    pub fn new() -> Self {
        CnfAlg {
            solver: Solver::new(),
            varmap: FastHashMap::default(),
        }
    }

    fn fresh(&mut self) -> Lit {
        Lit::pos(self.solver.new_var())
    }

    /// The solver literal carrying bit `bit` of `var`, if it was ever
    /// mentioned.
    pub fn lookup(&self, var: VarId, bit: u32) -> Option<Lit> {
        self.varmap.get(&(var.0, bit)).copied()
    }

    /// Iterate over all allocated (var, bit) → literal assignments.
    pub fn var_bits(&self) -> impl Iterator<Item = (VarId, u32, Lit)> + '_ {
        self.varmap.iter().map(|(&(v, b), &l)| (VarId(v), b, l))
    }

    /// Assert a [`CLit`] as a unit constraint. Returns `false` if the
    /// formula became unsatisfiable.
    pub fn assert_true(&mut self, b: CLit) -> bool {
        match b {
            CLit::T => true,
            CLit::F => false,
            CLit::L(l) => self.solver.add_clause(&[l]),
        }
    }
}

impl Default for CnfAlg {
    fn default() -> Self {
        Self::new()
    }
}

impl BoolAlg for CnfAlg {
    type B = CLit;

    fn lit(&mut self, b: bool) -> CLit {
        if b {
            CLit::T
        } else {
            CLit::F
        }
    }

    fn var_bit(&mut self, var: VarId, bit: u32) -> CLit {
        if let Some(&l) = self.varmap.get(&(var.0, bit)) {
            return CLit::L(l);
        }
        let l = self.fresh();
        self.varmap.insert((var.0, bit), l);
        CLit::L(l)
    }

    fn not(&mut self, a: &CLit) -> CLit {
        match *a {
            CLit::T => CLit::F,
            CLit::F => CLit::T,
            CLit::L(l) => CLit::L(!l),
        }
    }

    fn and(&mut self, a: &CLit, b: &CLit) -> CLit {
        match (*a, *b) {
            (CLit::F, _) | (_, CLit::F) => CLit::F,
            (CLit::T, x) | (x, CLit::T) => x,
            (CLit::L(x), CLit::L(y)) if x == y => CLit::L(x),
            (CLit::L(x), CLit::L(y)) if x == !y => CLit::F,
            (CLit::L(x), CLit::L(y)) => {
                let g = self.fresh();
                self.solver.add_clause(&[!g, x]);
                self.solver.add_clause(&[!g, y]);
                self.solver.add_clause(&[g, !x, !y]);
                CLit::L(g)
            }
        }
    }

    fn or(&mut self, a: &CLit, b: &CLit) -> CLit {
        match (*a, *b) {
            (CLit::T, _) | (_, CLit::T) => CLit::T,
            (CLit::F, x) | (x, CLit::F) => x,
            (CLit::L(x), CLit::L(y)) if x == y => CLit::L(x),
            (CLit::L(x), CLit::L(y)) if x == !y => CLit::T,
            (CLit::L(x), CLit::L(y)) => {
                let g = self.fresh();
                self.solver.add_clause(&[g, !x]);
                self.solver.add_clause(&[g, !y]);
                self.solver.add_clause(&[!g, x, y]);
                CLit::L(g)
            }
        }
    }

    fn xor(&mut self, a: &CLit, b: &CLit) -> CLit {
        match (*a, *b) {
            (CLit::F, x) | (x, CLit::F) => x,
            (CLit::T, x) | (x, CLit::T) => self.not(&x),
            (CLit::L(x), CLit::L(y)) if x == y => CLit::F,
            (CLit::L(x), CLit::L(y)) if x == !y => CLit::T,
            (CLit::L(x), CLit::L(y)) => {
                let g = self.fresh();
                self.solver.add_clause(&[!g, x, y]);
                self.solver.add_clause(&[!g, !x, !y]);
                self.solver.add_clause(&[g, x, !y]);
                self.solver.add_clause(&[g, !x, y]);
                CLit::L(g)
            }
        }
    }

    fn ite(&mut self, c: &CLit, t: &CLit, e: &CLit) -> CLit {
        match *c {
            CLit::T => *t,
            CLit::F => *e,
            CLit::L(cl) => {
                if t == e {
                    return *t;
                }
                match (*t, *e) {
                    (CLit::T, CLit::F) => *c,
                    (CLit::F, CLit::T) => self.not(c),
                    // ite(c, true, x)  = c ∨ x
                    (CLit::T, x) => self.or(c, &x),
                    // ite(c, false, x) = ¬c ∧ x
                    (CLit::F, x) => {
                        let nc = self.not(c);
                        self.and(&nc, &x)
                    }
                    // ite(c, x, true)  = ¬c ∨ x
                    (x, CLit::T) => {
                        let nc = self.not(c);
                        self.or(&nc, &x)
                    }
                    // ite(c, x, false) = c ∧ x
                    (x, CLit::F) => self.and(c, &x),
                    (CLit::L(tl), CLit::L(el)) => {
                        let g = self.fresh();
                        self.solver.add_clause(&[!g, !cl, tl]);
                        self.solver.add_clause(&[!g, cl, el]);
                        self.solver.add_clause(&[g, !cl, !tl]);
                        self.solver.add_clause(&[g, cl, !el]);
                        CLit::L(g)
                    }
                }
            }
        }
    }

    fn const_of(&self, b: &CLit) -> Option<bool> {
        match b {
            CLit::T => Some(true),
            CLit::F => Some(false),
            CLit::L(_) => None,
        }
    }
}

/// Solve a boolean expression with the SAT pipeline; `Some(env)` maps each
/// variable to a concrete value on success.
pub fn solve(ctx: &Context, root: ExprId) -> Option<Env> {
    match solve_budgeted(ctx, root, &Budget::unlimited()).0 {
        SolveOutcome::Sat(env) => Some(env),
        SolveOutcome::Unsat => None,
        SolveOutcome::Cancelled => unreachable!("unlimited budget cannot cancel"),
    }
}

/// [`solve`] under a cooperative [`Budget`], also reporting the CDCL
/// solver's search statistics. The budget is polled on conflict and
/// decision boundaries inside the search loop.
pub fn solve_budgeted(ctx: &Context, root: ExprId, budget: &Budget) -> (SolveOutcome, Stats) {
    assert_eq!(ctx.sort_of(root), Sort::Bool, "solve: root must be Bool");
    let _span = rzen_obs::span!("smt.solve", "root" => root.0);
    let mut alg = CnfAlg::new();
    let mut compiler = BitCompiler::new(&mut alg);
    let sym = compiler.compile(ctx, root);
    let b = *sym.as_bool();
    if !alg.assert_true(b) {
        return (SolveOutcome::Unsat, alg.solver.stats);
    }
    // Tseitin compilation itself is linear and not interrupted; honor a
    // budget that expired during it before starting the search.
    if budget.is_exhausted() {
        return (SolveOutcome::Cancelled, alg.solver.stats);
    }
    alg.solver.set_interrupt(budget.cancel_flag());
    if let Some(deadline) = budget.deadline() {
        alg.solver.set_deadline(deadline);
    }
    let status = alg.solver.solve_limited(&[]);
    let stats = alg.solver.stats;
    rzen_obs::counter!("smt.solves", "SMT backend solve calls").inc();
    rzen_obs::counter!("smt.vars", "CNF variables allocated (summed over solves)")
        .add(alg.solver.num_vars() as u64);
    rzen_obs::counter!("smt.clauses", "CNF clauses asserted (summed over solves)")
        .add(alg.solver.num_clauses() as u64);
    match status {
        SolveStatus::Sat => (SolveOutcome::Sat(extract_env(ctx, &alg)), stats),
        SolveStatus::Unsat => (SolveOutcome::Unsat, stats),
        SolveStatus::Unknown => (SolveOutcome::Cancelled, stats),
    }
}

/// Read a model out of a satisfied solver.
pub fn extract_env(ctx: &Context, alg: &CnfAlg) -> Env {
    let mut acc: FastHashMap<u32, u64> = FastHashMap::default();
    for (var, bit, lit) in alg.var_bits() {
        let value = alg.solver.value(lit.var()) == lit.is_pos();
        if value {
            *acc.entry(var.0).or_insert(0) |= 1u64 << bit;
        } else {
            acc.entry(var.0).or_insert(0);
        }
    }
    let mut env = Env::new();
    for (var_idx, bits) in acc {
        let var = VarId(var_idx);
        let sort = ctx.var_sort(var);
        let val = match sort {
            Sort::Bool => Value::Bool(bits & 1 == 1),
            Sort::BitVec { .. } => Value::int(sort, bits),
            Sort::Struct(_) => unreachable!(),
        };
        env.bind(var, val);
    }
    env
}
