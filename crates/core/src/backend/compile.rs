//! Compilation of models to a register bytecode VM.
//!
//! The paper's §8: "We can compile any Zen function to a real
//! implementation by simply writing `f.Compile()`", which in C# emits IL
//! that the CLR JIT-compiles. Rust has no runtime code generation, so the
//! equivalent here is a flat register program: one instruction per DAG
//! node in topological order, executed without hashing or recursion. The
//! key property is preserved — the executable implementation is derived
//! from (and therefore in sync with) the verified model.

use rzen_bdd::FastHashMap;

use crate::backend::interp::Env;
use crate::ctx::Context;
use crate::ir::{Bv2, CmpOp, Expr, ExprId, VarId};
use crate::sorts::{Sort, StructId};
use crate::value::Value;

/// A register index (one register per instruction, SSA-style).
type Reg = u32;

/// One VM instruction; the destination register is the instruction's own
/// index.
#[derive(Clone, Debug)]
enum Instr {
    Const(u32),
    Var(VarId, Sort),
    Not(Reg),
    And(Reg, Reg),
    Or(Reg, Reg),
    BvNot(Sort, Reg),
    Bv(Bv2, Sort, Reg, Reg),
    Eq(Reg, Reg),
    Cmp(CmpOp, Sort, Reg, Reg),
    If(Reg, Reg, Reg),
    Make(StructId, Vec<Reg>),
    Get(Reg, u32),
    Cast(Sort, Sort, Reg),
}

/// A compiled expression: a linear register program.
pub struct Program {
    instrs: Vec<Instr>,
    consts: Vec<Value>,
    root: Reg,
}

impl Program {
    /// Number of instructions (diagnostics; one per reachable DAG node).
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Is the program empty? (Never true for a compiled expression.)
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Execute under a variable assignment.
    pub fn run(&self, env: &Env) -> Value {
        let mut regs: Vec<Value> = Vec::with_capacity(self.instrs.len());
        for instr in &self.instrs {
            let v = match instr {
                Instr::Const(i) => self.consts[*i as usize].clone(),
                Instr::Var(v, sort) => match env.get(*v) {
                    Some(val) => val.clone(),
                    None => Value::int_or_bool_default(*sort),
                },
                Instr::Not(a) => Value::Bool(!regs[*a as usize].as_bool()),
                Instr::And(a, b) => {
                    Value::Bool(regs[*a as usize].as_bool() && regs[*b as usize].as_bool())
                }
                Instr::Or(a, b) => {
                    Value::Bool(regs[*a as usize].as_bool() || regs[*b as usize].as_bool())
                }
                Instr::BvNot(sort, a) => Value::int(*sort, !regs[*a as usize].as_bits()),
                Instr::Bv(op, sort, a, b) => Value::int(
                    *sort,
                    crate::semantics::bv_bin(
                        *op,
                        *sort,
                        regs[*a as usize].as_bits(),
                        regs[*b as usize].as_bits(),
                    ),
                ),
                Instr::Eq(a, b) => Value::Bool(regs[*a as usize] == regs[*b as usize]),
                Instr::Cmp(op, sort, a, b) => Value::Bool(crate::semantics::bv_cmp(
                    *op,
                    *sort,
                    regs[*a as usize].as_bits(),
                    regs[*b as usize].as_bits(),
                )),
                Instr::If(c, t, e) => {
                    if regs[*c as usize].as_bool() {
                        regs[*t as usize].clone()
                    } else {
                        regs[*e as usize].clone()
                    }
                }
                Instr::Make(id, fs) => {
                    Value::Struct(*id, fs.iter().map(|&f| regs[f as usize].clone()).collect())
                }
                Instr::Get(a, idx) => regs[*a as usize].fields()[*idx as usize].clone(),
                Instr::Cast(from, to, a) => Value::int(
                    *to,
                    crate::semantics::bv_cast(*from, *to, regs[*a as usize].as_bits()),
                ),
            };
            regs.push(v);
        }
        regs[self.root as usize].clone()
    }
}

impl Value {
    fn int_or_bool_default(sort: Sort) -> Value {
        match sort {
            Sort::Bool => Value::Bool(false),
            Sort::BitVec { .. } => Value::Int { sort, bits: 0 },
            Sort::Struct(_) => unreachable!("variables are primitive"),
        }
    }
}

/// Compile an expression DAG to a [`Program`].
pub fn compile(ctx: &Context, root: ExprId) -> Program {
    let mut reg_of: FastHashMap<u32, Reg> = FastHashMap::default();
    let mut instrs: Vec<Instr> = Vec::new();
    let mut consts: Vec<Value> = Vec::new();

    enum Task {
        Visit(ExprId),
        Build(ExprId),
    }
    let mut stack = vec![Task::Visit(root)];
    while let Some(task) = stack.pop() {
        match task {
            Task::Visit(e) => {
                if reg_of.contains_key(&e.0) {
                    continue;
                }
                stack.push(Task::Build(e));
                for c in crate::backend::bitblast::children(ctx, e) {
                    if !reg_of.contains_key(&c.0) {
                        stack.push(Task::Visit(c));
                    }
                }
            }
            Task::Build(e) => {
                if reg_of.contains_key(&e.0) {
                    continue;
                }
                let r = |id: &ExprId| reg_of[&id.0];
                let instr = match ctx.expr(e) {
                    Expr::Var(v) => Instr::Var(*v, ctx.var_sort(*v)),
                    Expr::ConstBool(b) => {
                        consts.push(Value::Bool(*b));
                        Instr::Const(consts.len() as u32 - 1)
                    }
                    Expr::ConstInt { sort, bits } => {
                        consts.push(Value::Int {
                            sort: *sort,
                            bits: *bits,
                        });
                        Instr::Const(consts.len() as u32 - 1)
                    }
                    Expr::Not(a) => Instr::Not(r(a)),
                    Expr::And(a, b) => Instr::And(r(a), r(b)),
                    Expr::Or(a, b) => Instr::Or(r(a), r(b)),
                    Expr::BvNot(a) => Instr::BvNot(ctx.sort_of(*a), r(a)),
                    Expr::Bv(op, a, b) => Instr::Bv(*op, ctx.sort_of(*a), r(a), r(b)),
                    Expr::Eq(a, b) => Instr::Eq(r(a), r(b)),
                    Expr::Cmp(op, a, b) => Instr::Cmp(*op, ctx.sort_of(*a), r(a), r(b)),
                    Expr::If(c, t, f) => Instr::If(r(c), r(t), r(f)),
                    Expr::MakeStruct(id, fs) => Instr::Make(*id, fs.iter().map(r).collect()),
                    Expr::GetField(a, idx) => Instr::Get(r(a), *idx),
                    Expr::Cast(a, to) => Instr::Cast(ctx.sort_of(*a), *to, r(a)),
                };
                reg_of.insert(e.0, instrs.len() as Reg);
                instrs.push(instr);
            }
        }
    }
    Program {
        instrs,
        consts,
        root: reg_of[&root.0],
    }
}

/// Bind a concrete input [`Value`] against the shape of a `make_symbolic`
/// expression, producing the variable assignment under which the symbolic
/// input evaluates to that value.
///
/// The match walks `MakeStruct` nodes structurally; at an `If` node (the
/// canonicalization guards that `make_symbolic` inserts around list slots
/// and option payloads) it descends into the *then* branch, which by
/// construction contains the variables. Constants and other nodes are
/// ignored. Lists longer than the compiled slot count are truncated.
pub fn bind_value(ctx: &Context, shape: ExprId, value: &Value, env: &mut Env) {
    let mut stack: Vec<(ExprId, Value)> = vec![(shape, value.clone())];
    while let Some((e, v)) = stack.pop() {
        match ctx.expr(e) {
            Expr::Var(var) => {
                // Clamp to the variable's sort (e.g. a list length var).
                let sort = ctx.var_sort(*var);
                let bound = match (&v, sort) {
                    (Value::Int { bits, .. }, Sort::BitVec { .. }) => Value::int(sort, *bits),
                    _ => v,
                };
                env.bind(*var, bound);
            }
            Expr::MakeStruct(_, fs) => {
                let vals = v.fields();
                for (f, val) in fs.iter().zip(vals) {
                    stack.push((*f, val.clone()));
                }
            }
            Expr::If(_, t, _) => stack.push((*t, v)),
            _ => {}
        }
    }
}
