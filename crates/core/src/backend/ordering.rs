//! BDD variable-ordering interaction analysis (§6 of the paper).
//!
//! "Zen uses a custom analysis, similar to alias analyses in traditional
//! programming languages, to find a strategy for ordering variables. […]
//! when two variables are compared for (in)equality, Zen ensures their
//! orderings will be interleaved, as any other ordering will result in an
//! exponential memory blowup."
//!
//! The analysis walks the expression DAG once. At every binary operation
//! that relates two subexpressions bit-by-bit (equality, comparisons, and
//! arithmetic/bitwise operators), it collects the symbolic variables on
//! each side and merges them into interaction clusters with a union-find.
//! The final order walks variables in first-occurrence order and, whenever
//! it meets an unemitted cluster, emits the *whole* cluster with the bits
//! of its members interleaved (most significant bits first, so IP-prefix
//! constraints stay shallow).

use rzen_bdd::{FastHashMap, FastHashSet};

use crate::ctx::Context;
use crate::ir::{Expr, ExprId, VarId};
use crate::sorts::Sort;

/// A computed assignment of (variable, bit) pairs to solver levels.
pub struct VarOrder {
    map: FastHashMap<(u32, u32), u32>,
    next: u32,
}

impl VarOrder {
    /// An empty order whose on-demand allocations start at `base`.
    pub(crate) fn with_base(base: u32) -> VarOrder {
        VarOrder {
            map: FastHashMap::default(),
            next: base,
        }
    }

    /// Pin a (var, bit) pair to an explicit level (used by the state-set
    /// machinery to lay variables out on the canonical interleaved
    /// blocks).
    pub(crate) fn force(&mut self, key: (VarId, u32), level: u32) {
        self.map.insert((key.0 .0, key.1), level);
    }

    /// The solver level for bit `bit` (LSB = 0) of `var`, allocating a new
    /// level for bits never seen by the analysis.
    pub fn level(&mut self, var: VarId, bit: u32) -> u32 {
        *self.map.entry((var.0, bit)).or_insert_with(|| {
            let l = self.next;
            self.next += 1;
            l
        })
    }

    /// Number of levels allocated so far.
    pub fn num_levels(&self) -> u32 {
        self.next
    }

    /// Iterate over all (var, bit) → level assignments.
    pub fn assignments(&self) -> impl Iterator<Item = (VarId, u32, u32)> + '_ {
        self.map.iter().map(|(&(v, b), &l)| (VarId(v), b, l))
    }
}

/// Cap on the number of variables collected per operand when looking for
/// interactions; operands bigger than this are treated as "interacts with
/// everything on the other side".
const COLLECT_CAP: usize = 256;

struct UnionFind {
    parent: FastHashMap<u32, u32>,
}

impl UnionFind {
    fn new() -> Self {
        UnionFind {
            parent: FastHashMap::default(),
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let p = *self.parent.get(&x).unwrap_or(&x);
        if p == x {
            return x;
        }
        let root = self.find(p);
        self.parent.insert(x, root);
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

/// Compute a variable order for the given roots. With `interactions`
/// disabled (the ablation), variables are laid out sequentially in
/// first-occurrence order with no interleaving.
pub fn compute_order(ctx: &Context, roots: &[ExprId], interactions: bool) -> VarOrder {
    let mut order = VarOrder {
        map: FastHashMap::default(),
        next: 0,
    };
    extend_order(ctx, &mut order, roots, interactions);
    order
}

/// Extend an existing order with the variables reachable from `roots`
/// that have no level yet. (Var, bit) pairs already assigned keep their
/// levels; new pairs are appended after the current maximum, with the
/// same cluster-interleaved layout [`compute_order`] produces. This is
/// how a [`crate::session::SolverSession`]'s shared BDD manager absorbs
/// each new query without disturbing the levels earlier queries pinned.
pub fn extend_order(ctx: &Context, order: &mut VarOrder, roots: &[ExprId], interactions: bool) {
    // Pass 1: first-occurrence order of variables, and interaction edges.
    let mut occurrence: Vec<VarId> = Vec::new();
    let mut seen_vars: FastHashSet<u32> = FastHashSet::default();
    let mut uf = UnionFind::new();
    let mut visited: FastHashSet<u32> = FastHashSet::default();
    let mut stack: Vec<ExprId> = roots.to_vec();
    // Depth-first, children pushed in reverse so occurrence order is
    // left-to-right.
    while let Some(e) = stack.pop() {
        if !visited.insert(e.0) {
            continue;
        }
        if let Expr::Var(v) = ctx.expr(e) {
            if seen_vars.insert(v.0) {
                occurrence.push(*v);
            }
        }
        if interactions {
            if let Some((a, b)) = interaction_operands(ctx, e) {
                let va = collect_vars(ctx, a);
                let vb = collect_vars(ctx, b);
                merge_interaction(&mut uf, &va, &vb);
            }
        }
        let mut kids = crate::backend::bitblast::children(ctx, e);
        kids.reverse();
        stack.extend(kids);
    }

    // Pass 2: group variables by cluster. Variables are laid out in
    // *creation* order (the order `make_symbolic` allocated them, i.e.
    // struct field order — the layout a domain expert would pick by
    // hand), with each interaction cluster emitted at its first member's
    // position.
    occurrence.sort_unstable();
    let mut cluster_of: FastHashMap<u32, Vec<VarId>> = FastHashMap::default();
    let mut cluster_order: Vec<u32> = Vec::new();
    for &v in &occurrence {
        let root = uf.find(v.0);
        let entry = cluster_of.entry(root).or_insert_with(|| {
            cluster_order.push(root);
            Vec::new()
        });
        entry.push(v);
    }

    // Pass 3: emit levels — per cluster, interleave member bits MSB-first.
    // Pairs that already have a level (earlier queries in a session) are
    // skipped, so within the appended range new clusters still interleave.
    for root in cluster_order {
        let members = &cluster_of[&root];
        let widths: Vec<u32> = members.iter().map(|&v| var_width(ctx, v)).collect();
        let max_w = widths.iter().copied().max().unwrap_or(0);
        // p counts down from the most significant bit position.
        for p in (0..max_w).rev() {
            for (m, &w) in members.iter().zip(&widths) {
                if p < w && !order.map.contains_key(&(m.0, p)) {
                    let l = order.next;
                    order.next += 1;
                    order.map.insert((m.0, p), l);
                }
            }
        }
    }
}

fn var_width(ctx: &Context, v: VarId) -> u32 {
    match ctx.var_sort(v) {
        Sort::Bool => 1,
        Sort::BitVec { width, .. } => width as u32,
        Sort::Struct(_) => unreachable!("variables are primitive"),
    }
}

/// If this node relates two subexpressions bit-by-bit, its operands.
fn interaction_operands(ctx: &Context, e: ExprId) -> Option<(ExprId, ExprId)> {
    match ctx.expr(e) {
        Expr::Eq(a, b) | Expr::Cmp(_, a, b) | Expr::Bv(_, a, b) => Some((*a, *b)),
        _ => None,
    }
}

/// Collect up to [`COLLECT_CAP`] variables under a node, in DFS order.
/// Returns `None` when the cap is exceeded.
fn collect_vars(ctx: &Context, root: ExprId) -> Option<Vec<VarId>> {
    let mut out = Vec::new();
    let mut visited: FastHashSet<u32> = FastHashSet::default();
    let mut stack = vec![root];
    while let Some(e) = stack.pop() {
        if !visited.insert(e.0) {
            continue;
        }
        if let Expr::Var(v) = ctx.expr(e) {
            out.push(*v);
            if out.len() > COLLECT_CAP {
                return None;
            }
        }
        let mut kids = crate::backend::bitblast::children(ctx, e);
        kids.reverse();
        stack.extend(kids);
    }
    Some(out)
}

fn merge_interaction(uf: &mut UnionFind, a: &Option<Vec<VarId>>, b: &Option<Vec<VarId>>) {
    match (a, b) {
        (Some(va), Some(vb)) if va.len() == vb.len() => {
            // Structurally aligned (e.g. two symbolic packets compared for
            // equality): merge position-wise, interleaving corresponding
            // fields.
            for (x, y) in va.iter().zip(vb) {
                uf.union(x.0, y.0);
            }
        }
        (Some(va), Some(vb)) => {
            // Unaligned: merge conservatively into one cluster.
            for w in va.windows(2) {
                uf.union(w[0].0, w[1].0);
            }
            for w in vb.windows(2) {
                uf.union(w[0].0, w[1].0);
            }
            if let (Some(x), Some(y)) = (va.first(), vb.first()) {
                uf.union(x.0, y.0);
            }
        }
        _ => {
            // One side too large: leave ordering to occurrence order rather
            // than build one giant cluster.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::{reset_ctx, with_ctx};
    use crate::ir::Bv2;

    #[test]
    fn equality_interleaves_operand_bits() {
        reset_ctx();
        let (order, x, y) = with_ctx(|ctx| {
            let x = ctx.mk_var(Sort::bv(8));
            let y = ctx.mk_var(Sort::bv(8));
            let eq = ctx.mk_eq(x, y);
            (compute_order(ctx, &[eq], true), x, y)
        });
        let _ = (x, y);
        let mut asg: Vec<(u32, u32, u32)> =
            order.assignments().map(|(v, b, l)| (l, v.0, b)).collect();
        asg.sort();
        // Levels alternate between the two variables, MSB first.
        assert_eq!(asg[0].2, 7); // MSB of first var at level 0
        assert_eq!(asg[1].2, 7); // MSB of second var at level 1
        assert_ne!(asg[0].1, asg[1].1); // different vars adjacent
        assert_eq!(asg.len(), 16);
        for pair in asg.chunks(2) {
            assert_eq!(pair[0].2, pair[1].2, "same bit significance adjacent");
            assert_ne!(pair[0].1, pair[1].1);
        }
    }

    #[test]
    fn unrelated_vars_stay_sequential() {
        reset_ctx();
        let order = with_ctx(|ctx| {
            let x = ctx.mk_var(Sort::bv(4));
            let y = ctx.mk_var(Sort::bv(4));
            let k = ctx.mk_int(Sort::bv(4), 3);
            let e1 = ctx.mk_cmp(crate::ir::CmpOp::Lt, x, k);
            let e2 = ctx.mk_cmp(crate::ir::CmpOp::Lt, y, k);
            let both = ctx.mk_and(e1, e2);
            compute_order(ctx, &[both], true)
        });
        let mut asg: Vec<(u32, u32)> = order.assignments().map(|(v, _, l)| (l, v.0)).collect();
        asg.sort();
        // First 4 levels all belong to var 0, next 4 to var 1.
        assert!(asg[..4].iter().all(|&(_, v)| v == asg[0].1));
        assert!(asg[4..].iter().all(|&(_, v)| v == asg[4].1));
    }

    #[test]
    fn ablation_flag_disables_interleaving() {
        reset_ctx();
        let order = with_ctx(|ctx| {
            let x = ctx.mk_var(Sort::bv(8));
            let y = ctx.mk_var(Sort::bv(8));
            let eq = ctx.mk_eq(x, y);
            compute_order(ctx, &[eq], false)
        });
        let mut asg: Vec<(u32, u32)> = order.assignments().map(|(v, _, l)| (l, v.0)).collect();
        asg.sort();
        // Sequential: the first 8 levels belong to one variable.
        assert!(asg[..8].iter().all(|&(_, v)| v == asg[0].1));
    }

    #[test]
    fn arithmetic_interaction_merges() {
        reset_ctx();
        let order = with_ctx(|ctx| {
            let x = ctx.mk_var(Sort::bv(8));
            let y = ctx.mk_var(Sort::bv(8));
            let sum = ctx.mk_bv(Bv2::Add, x, y);
            let k = ctx.mk_int(Sort::bv(8), 9);
            let q = ctx.mk_eq(sum, k);
            compute_order(ctx, &[q], true)
        });
        let mut asg: Vec<(u32, u32)> = order.assignments().map(|(v, _, l)| (l, v.0)).collect();
        asg.sort();
        // Adder operands interleave as well.
        assert_ne!(asg[0].1, asg[1].1);
    }

    #[test]
    fn unseen_bits_get_fresh_levels() {
        let mut order = VarOrder::with_base(100);
        let l1 = order.level(crate::ir::VarId(0), 0);
        let l2 = order.level(crate::ir::VarId(0), 1);
        let l1_again = order.level(crate::ir::VarId(0), 0);
        assert_eq!(l1, 100);
        assert_eq!(l2, 101);
        assert_eq!(l1, l1_again);
    }
}
