//! The concrete evaluator — the simulation backend.
//!
//! "Since Zen models are executable — they are simply C# code — simulations
//! performed by tools like Batfish are straightforward" (§4). Here, models
//! are ordinary Rust code that builds IR; this module runs that IR on
//! concrete values. Evaluation is iterative and memoized per node, so the
//! deeply nested conditionals of large ACL models evaluate in linear time
//! without recursion.

use rzen_bdd::FastHashMap;

use crate::ctx::Context;
use crate::ir::{Expr, ExprId, VarId};
use crate::value::Value;

/// A variable assignment: values for (a subset of) the symbolic variables.
/// Missing variables read as the default (zero) value of their sort.
#[derive(Clone, Debug, Default)]
pub struct Env {
    vals: FastHashMap<u32, Value>,
}

impl Env {
    /// The empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Bind a variable.
    pub fn bind(&mut self, v: VarId, val: Value) {
        self.vals.insert(v.0, val);
    }

    /// Look up a variable.
    pub fn get(&self, v: VarId) -> Option<&Value> {
        self.vals.get(&v.0)
    }
}

/// Evaluate an expression under an environment.
pub fn eval(ctx: &Context, root: ExprId, env: &Env) -> Value {
    let mut cache: FastHashMap<u32, Value> = FastHashMap::default();
    enum Task {
        Visit(ExprId),
        Build(ExprId),
    }
    let mut stack = vec![Task::Visit(root)];
    while let Some(task) = stack.pop() {
        match task {
            Task::Visit(e) => {
                if cache.contains_key(&e.0) {
                    continue;
                }
                stack.push(Task::Build(e));
                for c in crate::backend::bitblast::children(ctx, e) {
                    if !cache.contains_key(&c.0) {
                        stack.push(Task::Visit(c));
                    }
                }
            }
            Task::Build(e) => {
                if cache.contains_key(&e.0) {
                    continue;
                }
                let v = build(ctx, env, &cache, e);
                cache.insert(e.0, v);
            }
        }
    }
    cache.remove(&root.0).unwrap()
}

fn build(ctx: &Context, env: &Env, cache: &FastHashMap<u32, Value>, e: ExprId) -> Value {
    let get = |id: &ExprId| cache[&id.0].clone();
    match ctx.expr(e) {
        Expr::Var(v) => match env.get(*v) {
            Some(val) => {
                debug_assert_eq!(val.sort(), ctx.var_sort(*v), "env value sort mismatch");
                val.clone()
            }
            None => default_value(ctx, ctx.var_sort(*v)),
        },
        Expr::ConstBool(b) => Value::Bool(*b),
        Expr::ConstInt { sort, bits } => Value::Int {
            sort: *sort,
            bits: *bits,
        },
        Expr::Not(a) => Value::Bool(!get(a).as_bool()),
        Expr::And(a, b) => Value::Bool(get(a).as_bool() && get(b).as_bool()),
        Expr::Or(a, b) => Value::Bool(get(a).as_bool() || get(b).as_bool()),
        Expr::BvNot(a) => {
            let sort = ctx.sort_of(*a);
            Value::int(sort, !get(a).as_bits())
        }
        Expr::Bv(op, a, b) => {
            let sort = ctx.sort_of(*a);
            Value::int(
                sort,
                crate::semantics::bv_bin(*op, sort, get(a).as_bits(), get(b).as_bits()),
            )
        }
        Expr::Eq(a, b) => Value::Bool(get(a) == get(b)),
        Expr::Cmp(op, a, b) => {
            let sort = ctx.sort_of(*a);
            Value::Bool(crate::semantics::bv_cmp(
                *op,
                sort,
                get(a).as_bits(),
                get(b).as_bits(),
            ))
        }
        Expr::If(c, t, f) => {
            if get(c).as_bool() {
                get(t)
            } else {
                get(f)
            }
        }
        Expr::MakeStruct(id, fs) => {
            Value::Struct(*id, fs.iter().map(|f| cache[&f.0].clone()).collect())
        }
        Expr::GetField(a, idx) => get(a).fields()[*idx as usize].clone(),
        Expr::Cast(a, to) => {
            let from = ctx.sort_of(*a);
            Value::int(*to, crate::semantics::bv_cast(from, *to, get(a).as_bits()))
        }
    }
}

/// The default (zero) value of a sort, computed without touching the
/// expression arena.
pub fn default_value(ctx: &Context, sort: crate::sorts::Sort) -> Value {
    use crate::sorts::Sort;
    match sort {
        Sort::Bool => Value::Bool(false),
        Sort::BitVec { .. } => Value::Int { sort, bits: 0 },
        Sort::Struct(id) => {
            let sorts: Vec<Sort> = ctx.struct_info(id).fields.iter().map(|f| f.1).collect();
            Value::Struct(
                id,
                sorts.into_iter().map(|s| default_value(ctx, s)).collect(),
            )
        }
    }
}
