//! Sorts: the types of the Zen intermediate language.
//!
//! Mirrors the `τ` grammar of the paper's Fig. 9: booleans, signed and
//! unsigned fixed-width integers, and composite struct sorts. Tuples,
//! options, lists, and maps are all represented as struct sorts registered
//! with a [`StructKey`] describing their provenance — this is the Rust
//! counterpart of the paper's `adapt[τ1, τ2]` mechanism, which implements
//! operations over new types "by converting them to types that Zen knows
//! how to handle" (§5).

use std::any::TypeId;

/// The sort (IVL-level type) of an expression.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Sort {
    /// Booleans.
    Bool,
    /// Fixed-width two's-complement bitvectors, 1–64 bits.
    BitVec {
        /// Width in bits.
        width: u8,
        /// Whether comparisons and right shifts are signed.
        signed: bool,
    },
    /// A registered composite sort (struct, tuple, option, list, map).
    Struct(StructId),
}

impl Sort {
    /// The unsigned bitvector sort of the given width.
    pub fn bv(width: u8) -> Sort {
        assert!((1..=64).contains(&width), "bitvector width must be 1..=64");
        Sort::BitVec {
            width,
            signed: false,
        }
    }

    /// The signed bitvector sort of the given width.
    pub fn bv_signed(width: u8) -> Sort {
        assert!((1..=64).contains(&width), "bitvector width must be 1..=64");
        Sort::BitVec {
            width,
            signed: true,
        }
    }

    /// Is this a bitvector sort?
    pub fn is_bitvec(self) -> bool {
        matches!(self, Sort::BitVec { .. })
    }

    /// Mask selecting the valid bits of this bitvector sort.
    pub fn mask(self) -> u64 {
        match self {
            Sort::BitVec { width: 64, .. } => u64::MAX,
            Sort::BitVec { width, .. } => (1u64 << width) - 1,
            _ => panic!("mask of non-bitvector sort {self:?}"),
        }
    }
}

/// Identifier of a registered struct sort. See [`crate::ctx`] for the
/// registry.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct StructId(pub(crate) u32);

/// Field layout of a registered struct sort.
#[derive(Clone, Debug)]
pub struct StructInfo {
    /// Human-readable name (used in debug printing and error messages).
    pub name: String,
    /// Ordered fields: `(name, sort)`.
    pub fields: Vec<(String, Sort)>,
}

/// Identity key under which a struct sort is registered. Registering the
/// same key twice yields the same [`StructId`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum StructKey {
    /// A user-defined Rust type (via `zen_struct!`), identified by its
    /// `TypeId` plus its field sorts. The field sorts are part of the key
    /// because a struct whose fields contain lists has a different layout
    /// for each list bound.
    Type(TypeId, Vec<Sort>),
    /// A bounded list of the given element sort with the given number of
    /// slots.
    List(Sort, u16),
    /// A tuple of the given component sorts.
    Tuple(Vec<Sort>),
    /// An option of the given payload sort.
    Option(Sort),
    /// An ad-hoc sort identified by name (for hand-registered sorts).
    Named(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bv_constructors_validate_width() {
        assert_eq!(
            Sort::bv(8),
            Sort::BitVec {
                width: 8,
                signed: false
            }
        );
        assert_eq!(
            Sort::bv_signed(32),
            Sort::BitVec {
                width: 32,
                signed: true
            }
        );
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        Sort::bv(0);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn overwide_rejected() {
        Sort::bv(65);
    }

    #[test]
    fn masks() {
        assert_eq!(Sort::bv(8).mask(), 0xFF);
        assert_eq!(Sort::bv(64).mask(), u64::MAX);
        assert_eq!(Sort::bv(1).mask(), 1);
    }
}
