//! Incremental solver sessions: long-lived solver state shared across
//! queries on one worker thread.
//!
//! The paper's framework funnels every analysis through one bit-level
//! translation (§6); a batch of queries over the same ACL, route map, or
//! topology therefore shares most of its circuit. A [`SolverSession`]
//! exploits that three ways:
//!
//! * **Bitblast cache** — compiled circuit nodes are kept across queries,
//!   keyed by hash-consed [`ExprId`]. Identical sub-DAGs (the model
//!   encoding shared by an all-pairs batch) bit-blast once per session.
//! * **SAT session** — one [`CnfAlg`]/[`rzen_sat::Solver`] pair lives for
//!   the whole session. Each query's root constraint is guarded by a
//!   fresh activation literal `a` (`¬a ∨ root` plus the assumption `a`),
//!   solved with `solve_limited(&[a])`, and retired by permanently
//!   asserting `¬a`, which makes the query's guard clause vacuous while
//!   every learnt clause — implied by the monotone clause database alone —
//!   carries over to later queries.
//! * **BDD session** — one [`BddManager`] lives for the whole session, so
//!   the unique table and op-cache persist. The variable order is
//!   *extended* per query ([`extend_order`]) so earlier queries' levels
//!   never move.
//!
//! Sessions are inherently thread-bound: circuit nodes are `Rc`-shared and
//! `ExprId`s index the thread-local context. Create a session only after
//! [`crate::reset_ctx`], and never reset the context while the session is
//! alive — the caches are keyed by `ExprId`s of the current arena. A panic
//! while solving leaves the session in an unspecified (but memory-safe)
//! state; discard it and start a fresh one (the engine's workers do).

use std::any::TypeId;
use std::rc::Rc;

use rzen_bdd::{Bdd, BddManager, BddStats, FastHashMap};
use rzen_sat::{Lit, SolveStatus, Stats};

use crate::backend::bdd::{env_from_levels, BddAlg};
use crate::backend::bitblast::{children, BitCompiler, SymVal};
use crate::backend::ordering::{extend_order, VarOrder};
use crate::backend::smt::{extract_env, CLit, CnfAlg};
use crate::backend::SolveOutcome;
use crate::budget::Budget;
use crate::ctx::Context;
use crate::function::Backend;
use crate::ir::ExprId;
use crate::sorts::Sort;

/// Cumulative reuse counters for one [`SolverSession`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Queries solved through the session.
    pub queries: u64,
    /// Bitblast-cache lookups served by nodes compiled for an *earlier*
    /// query (summed over both backends).
    pub bitblast_hits: u64,
    /// Circuit nodes compiled fresh (summed over both backends).
    pub bitblast_compiled: u64,
    /// Learnt clauses alive in the SAT solver at query start, summed over
    /// queries — the clause carryover earlier queries paid for.
    pub sat_clauses_carried: u64,
    /// BDD nodes alive in the shared manager at query start (terminals
    /// excluded), summed over queries.
    pub bdd_nodes_reused: u64,
}

impl SessionStats {
    /// Counter-wise difference `self - earlier` (both snapshots of the
    /// same monotone session counters).
    pub fn delta_since(&self, earlier: &SessionStats) -> SessionStats {
        SessionStats {
            queries: self.queries - earlier.queries,
            bitblast_hits: self.bitblast_hits - earlier.bitblast_hits,
            bitblast_compiled: self.bitblast_compiled - earlier.bitblast_compiled,
            sat_clauses_carried: self.sat_clauses_carried - earlier.sat_clauses_carried,
            bdd_nodes_reused: self.bdd_nodes_reused - earlier.bdd_nodes_reused,
        }
    }

    /// Add another snapshot's counters into this one.
    pub fn absorb(&mut self, other: &SessionStats) {
        self.queries += other.queries;
        self.bitblast_hits += other.bitblast_hits;
        self.bitblast_compiled += other.bitblast_compiled;
        self.sat_clauses_carried += other.sat_clauses_carried;
        self.bdd_nodes_reused += other.bdd_nodes_reused;
    }
}

/// Long-lived solver state for one worker thread; see the module docs.
pub struct SolverSession {
    backend: Backend,
    smt: Option<SmtSession>,
    bdd: Option<BddSession>,
    /// Symbolic inputs reused across queries, keyed by (input type, list
    /// bound). Reusing the *same* input variables is what lets the
    /// hash-consed arena share model sub-DAGs between queries; fresh
    /// variables per query would defeat every cache below.
    inputs: FastHashMap<(TypeId, u16), ExprId>,
    stats: SessionStats,
}

impl SolverSession {
    /// A fresh session for `backend`. Call on a thread whose context has
    /// just been reset and holds no other live `Zen` handles.
    pub fn new(backend: Backend) -> SolverSession {
        SolverSession {
            backend,
            smt: None,
            bdd: None,
            inputs: FastHashMap::default(),
            stats: SessionStats::default(),
        }
    }

    /// The backend this session solves with.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Snapshot of the cumulative reuse counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// The cached symbolic input for `key`, creating it with `mk` on first
    /// use.
    pub(crate) fn input_for(&mut self, key: (TypeId, u16), mk: impl FnOnce() -> ExprId) -> ExprId {
        *self.inputs.entry(key).or_insert_with(mk)
    }

    /// Solve `root` under `budget` with this session's backend, reusing
    /// carried state and recording reuse counters.
    pub(crate) fn solve(
        &mut self,
        ctx: &Context,
        root: ExprId,
        use_interactions: bool,
        budget: &Budget,
    ) -> (SolveOutcome, Option<Stats>, Option<BddStats>) {
        assert_eq!(ctx.sort_of(root), Sort::Bool, "solve: root must be Bool");
        self.stats.queries += 1;
        rzen_obs::counter!("session.queries", "queries solved through solver sessions").inc();
        match self.backend {
            Backend::Smt => {
                let (o, s) = self.smt.get_or_insert_with(SmtSession::new).solve(
                    ctx,
                    root,
                    budget,
                    &mut self.stats,
                );
                (o, Some(s), None)
            }
            Backend::Bdd => {
                let (o, s) = self.bdd.get_or_insert_with(BddSession::new).solve(
                    ctx,
                    root,
                    use_interactions,
                    budget,
                    &mut self.stats,
                );
                (o, None, Some(s))
            }
        }
    }
}

/// Persistent SAT backend state: one CNF environment and one CDCL solver
/// for the whole session.
struct SmtSession {
    alg: CnfAlg,
    cache: FastHashMap<u32, Rc<SymVal<CLit>>>,
    /// Last query index (0-based, = `retired` at compile time) that looked
    /// up or compiled each cache key. A cache hit does not descend into
    /// the node's children, so interior nodes of a stable sub-DAG go stale
    /// here even while their root stays hot — which is what lets
    /// inprocessing eliminate their circuitry (see [`SmtSession::quiesce`]).
    last_touch: FastHashMap<u32, u64>,
    /// Retired queries since session start; stamps `last_touch`.
    retired: u64,
    /// `Stats::vars_created` right after the last inprocessing pass, for
    /// the growth-based inprocessing trigger. The monotone creation
    /// counter (not `num_vars`) is what must be metered: with index
    /// recycling the variable count plateaus even while queries keep
    /// compiling fresh circuitry.
    inprocess_created: u64,
}

/// Inprocess when at least this many variables were created since the
/// last pass (with the relative trigger below). Growth is the right
/// trigger because a retired query's dead cone is roughly the variables
/// it compiled: lots of growth means lots of junk slowing search down,
/// while a quiet stretch of cache-hit queries needs no pass at all.
const MIN_INPROCESS_GROWTH: u64 = 2048;

/// At inprocessing points, evict cache entries no query touched within
/// this many retires. Eviction unfreezes the entry's literal, making the
/// circuitry reachable only through it eligible for variable elimination.
const CACHE_EVICT_AGE: u64 = 1;

impl SmtSession {
    fn new() -> SmtSession {
        let mut alg = CnfAlg::new();
        // Long-lived session: eliminated variables' indices are recycled
        // so the per-variable arrays stay sized to the live formula, not
        // to everything ever compiled. Sound here because the session
        // only reads model values of frozen (varmap/cache) variables.
        alg.solver.set_recycle_eliminated(true);
        SmtSession {
            alg,
            cache: FastHashMap::default(),
            last_touch: FastHashMap::default(),
            retired: 0,
            inprocess_created: 0,
        }
    }

    /// Session quiesce point, run after a query's activation literal is
    /// retired. Always runs the cheap level-0 simplification (which
    /// propagates the retirement unit and, once enough retirements
    /// accumulated, sweeps out the satisfied guard/learnt clauses); once
    /// enough new variables accumulated since the last pass
    /// ([`MIN_INPROCESS_GROWTH`]), it also evicts stale bitblast-cache
    /// entries and runs subsumption + bounded variable elimination with
    /// the session interface frozen.
    ///
    /// Frozen set = every variable the outside world can still mention:
    /// model-extraction literals (`varmap`) and every literal held by the
    /// bitblast cache (future queries re-use those as compiled circuit
    /// outputs). It is recomputed from scratch each time, so evicting a
    /// cache entry *unfreezes* its literal. Unfrozen variables are exactly
    /// the Tseitin gates of circuitry no future query can reference —
    /// elimination then erases a retired query's dead cone entirely (every
    /// resolvent of an unconstrained gate definition is a tautology),
    /// which is what keeps per-query search cost flat over a long session
    /// instead of growing with everything ever compiled.
    fn quiesce(&mut self, ctx: &Context) {
        let _span = rzen_obs::span!("session.smt.quiesce");
        self.retired += 1;
        let before = self.alg.solver.stats;
        let mut alive = self.alg.solver.simplify();
        // Growth-based trigger: inprocess once the variables created since
        // the last pass rival the live formula (dead weight ≈ live work),
        // with an absolute floor so tiny models don't churn.
        let nv = self.alg.solver.num_vars() as u64;
        let live = nv.saturating_sub(self.alg.solver.num_free_vars() as u64);
        let grown = self
            .alg
            .solver
            .stats
            .vars_created
            .saturating_sub(self.inprocess_created);
        if alive && grown >= live.max(MIN_INPROCESS_GROWTH) {
            // Evict cache entries not *reachable* (in the expression DAG)
            // from an entry some query touched within CACHE_EVICT_AGE
            // retires. Recency alone would be wrong-footed here: a cache
            // hit never descends into the node's children, so the hot
            // model's interior is never touched — but it is still live,
            // and unfreezing it would make BVE re-dissolve the whole model
            // every pass. Reachability keeps the hot closure frozen while
            // retired queries' predicate cones (unreachable from any hot
            // root) age out. An evicted entry is only a recompile on a
            // future miss, never a soundness issue.
            let horizon = self.retired.saturating_sub(CACHE_EVICT_AGE);
            let mut live: FastHashMap<u32, ()> = FastHashMap::default();
            let mut stack: Vec<ExprId> = self
                .last_touch
                .iter()
                .filter(|&(_, &t)| t >= horizon)
                .map(|(&k, _)| ExprId(k))
                .collect();
            while let Some(e) = stack.pop() {
                if live.insert(e.0, ()).is_some() {
                    continue;
                }
                stack.extend(children(ctx, e));
            }
            self.cache.retain(|k, _| live.contains_key(k));
            let cache = &self.cache;
            self.last_touch.retain(|k, _| cache.contains_key(k));

            self.alg.solver.clear_frozen();
            let interface: Vec<Lit> = self.alg.var_bits().map(|(_, _, l)| l).collect();
            for l in interface {
                self.alg.solver.set_frozen(l.var(), true);
            }
            for sym in self.cache.values() {
                freeze_symval(&mut self.alg.solver, sym);
            }
            let dbg = std::env::var_os("RZEN_QUIESCE_DEBUG").is_some();
            let t0 = std::time::Instant::now();
            alive = self.alg.solver.inprocess();
            self.inprocess_created = self.alg.solver.stats.vars_created;
            if dbg {
                let s = &self.alg.solver.stats;
                eprintln!(
                    "quiesce[{}]: {:.1}ms cache={} live_walk={} elim={} sub={} str={} vars={} arena={}K",
                    self.retired,
                    t0.elapsed().as_secs_f64() * 1e3,
                    self.cache.len(),
                    live.len(),
                    s.eliminated_vars - before.eliminated_vars,
                    s.subsumed - before.subsumed,
                    s.strengthened - before.strengthened,
                    self.alg.solver.num_vars(),
                    self.alg.solver.arena_bytes() / 1024,
                );
            }
        }
        // A session formula is satisfiable with all activations off; the
        // only way simplification can derive UNSAT is a corrupted session.
        debug_assert!(alive, "session clause database became unsatisfiable");
        rzen_sat::flush_obs_stats(&before, &self.alg.solver.stats);
        rzen_obs::gauge!(
            "sat.arena_bytes",
            "bytes held by the SAT clause arena (live + uncollected waste)"
        )
        .set(self.alg.solver.arena_bytes() as i64);
    }

    fn solve(
        &mut self,
        ctx: &Context,
        root: ExprId,
        budget: &Budget,
        session_stats: &mut SessionStats,
    ) -> (SolveOutcome, Stats) {
        let _span = rzen_obs::span!("session.smt.solve", "root" => root.0);
        let carried = self.alg.solver.num_learnts() as u64;
        session_stats.sat_clauses_carried += carried;
        rzen_obs::counter!(
            "session.sat.carried",
            "learnt clauses alive at query start (summed over session queries)"
        )
        .add(carried);

        let stats_before = self.alg.solver.stats;
        let seed = std::mem::take(&mut self.cache);
        let mut compiler = BitCompiler::with_seed_cache(&mut self.alg, seed);
        let sym = compiler.compile(ctx, root);
        let b = *sym.as_bool();
        session_stats.bitblast_hits += compiler.seed_hits();
        session_stats.bitblast_compiled += compiler.compiled() as u64;
        rzen_obs::counter!(
            "session.bitblast.hits",
            "bitblast-cache lookups served across queries"
        )
        .add(compiler.seed_hits());
        // Stamp every cache key this query used (hit or compiled) for the
        // recency-based eviction in `quiesce`.
        let touched = compiler.take_touched();
        let inserted = compiler.take_inserted();
        for k in touched.into_iter().chain(inserted) {
            self.last_touch.insert(k, self.retired);
        }
        self.cache = compiler.into_cache();

        let delta = |solver: &rzen_sat::Solver| stats_delta(&solver.stats, &stats_before);
        match b {
            CLit::F => (SolveOutcome::Unsat, delta(&self.alg.solver)),
            CLit::T | CLit::L(_) => {
                // Tseitin compilation is linear and not interrupted; honor
                // a budget that expired during it before searching.
                if budget.is_exhausted() {
                    return (SolveOutcome::Cancelled, delta(&self.alg.solver));
                }
                // Guard the root behind a fresh activation literal so it
                // can be retired after this query without poisoning the
                // clause database for the next one.
                let activation = match b {
                    CLit::L(l) => {
                        let a = Lit::pos(self.alg.solver.new_var());
                        self.alg.solver.add_clause(&[!a, l]);
                        Some(a)
                    }
                    _ => None,
                };
                self.alg.solver.clear_budget();
                self.alg.solver.set_interrupt(budget.cancel_flag());
                if let Some(deadline) = budget.deadline() {
                    self.alg.solver.set_deadline(deadline);
                }
                let assumptions: Vec<Lit> = activation.into_iter().collect();
                let status = self.alg.solver.solve_limited(&assumptions);
                self.alg.solver.clear_budget();
                let stats = delta(&self.alg.solver);
                let outcome = match status {
                    SolveStatus::Sat => SolveOutcome::Sat(extract_env(ctx, &self.alg)),
                    SolveStatus::Unsat => SolveOutcome::Unsat,
                    SolveStatus::Unknown => SolveOutcome::Cancelled,
                };
                // Retire the guard: `¬a` makes this query's root clause
                // vacuous for every later query, whatever the verdict was.
                // The quiesce pass then deletes what the retirement made
                // redundant instead of letting propagation scan it forever.
                if let Some(a) = activation {
                    self.alg.solver.add_clause(&[!a]);
                }
                self.quiesce(ctx);
                (outcome, stats)
            }
        }
    }
}

/// Freeze every SAT variable referenced by a cached compiled circuit
/// value: those literals are the session's reuse currency and must
/// survive variable elimination.
fn freeze_symval(solver: &mut rzen_sat::Solver, sym: &SymVal<CLit>) {
    fn freeze(solver: &mut rzen_sat::Solver, b: &CLit) {
        if let CLit::L(l) = b {
            solver.set_frozen(l.var(), true);
        }
    }
    match sym {
        SymVal::Bool(b) => freeze(solver, b),
        SymVal::Bv(bits) => {
            for b in bits {
                freeze(solver, b);
            }
        }
        SymVal::Struct(fields) => {
            for f in fields {
                freeze_symval(solver, f);
            }
        }
    }
}

fn stats_delta(after: &Stats, before: &Stats) -> Stats {
    Stats {
        conflicts: after.conflicts - before.conflicts,
        decisions: after.decisions - before.decisions,
        propagations: after.propagations - before.propagations,
        restarts: after.restarts - before.restarts,
        learned_clauses: after.learned_clauses - before.learned_clauses,
        deleted_clauses: after.deleted_clauses - before.deleted_clauses,
        lbd_sum: after.lbd_sum - before.lbd_sum,
        reduce_dbs: after.reduce_dbs - before.reduce_dbs,
        gcs: after.gcs - before.gcs,
        subsumed: after.subsumed - before.subsumed,
        strengthened: after.strengthened - before.strengthened,
        eliminated_vars: after.eliminated_vars - before.eliminated_vars,
        vars_created: after.vars_created - before.vars_created,
    }
}

/// Persistent BDD backend state: one manager (unique table + op-cache)
/// and one ever-growing variable order for the whole session.
struct BddSession {
    m: BddManager,
    order: VarOrder,
    cache: FastHashMap<u32, Rc<SymVal<Bdd>>>,
}

impl BddSession {
    fn new() -> BddSession {
        BddSession {
            m: BddManager::new(),
            order: VarOrder::with_base(0),
            cache: FastHashMap::default(),
        }
    }

    fn solve(
        &mut self,
        ctx: &Context,
        root: ExprId,
        use_interactions: bool,
        budget: &Budget,
        session_stats: &mut SessionStats,
    ) -> (SolveOutcome, BddStats) {
        let _span = rzen_obs::span!("session.bdd.solve", "root" => root.0);
        let reused = (self.m.arena_size() as u64).saturating_sub(2);
        session_stats.bdd_nodes_reused += reused;
        rzen_obs::counter!(
            "session.bdd.reused",
            "BDD nodes alive at query start (summed over session queries)"
        )
        .add(reused);

        // Append levels for this query's unseen variables; earlier
        // queries' levels are pinned and never move.
        {
            let _span = rzen_obs::span!("bdd.order");
            extend_order(ctx, &mut self.order, &[root], use_interactions);
        }
        let stats_before = self.m.stats();
        // (Re)arm the budget; this also resets the manager's interrupt
        // latch left by a cancelled earlier query.
        self.m
            .set_budget(Some(budget.cancel_flag()), budget.deadline());
        let order = std::mem::replace(&mut self.order, VarOrder::with_base(0));
        let seed = std::mem::take(&mut self.cache);
        let mut alg = BddAlg {
            m: &mut self.m,
            order,
        };
        let mut compiler = BitCompiler::with_seed_cache(&mut alg, seed);
        let sym = compiler.compile(ctx, root);
        let b = *sym.as_bool();
        session_stats.bitblast_hits += compiler.seed_hits();
        session_stats.bitblast_compiled += compiler.compiled() as u64;
        rzen_obs::counter!(
            "session.bitblast.hits",
            "bitblast-cache lookups served across queries"
        )
        .add(compiler.seed_hits());
        let inserted = compiler.take_inserted();
        let mut cache = compiler.into_cache();
        self.order = alg.order;
        let stats = bdd_stats_delta(&self.m.stats(), &stats_before);

        if self.m.interrupted() {
            // Nodes compiled during an interrupted build hold garbage
            // handles (the manager suppresses writes once interrupted);
            // evict exactly those. Entries that predate this query were
            // built to completion and stay valid.
            for k in inserted {
                cache.remove(&k);
            }
            self.cache = cache;
            self.m.set_budget(None, None);
            return (SolveOutcome::Cancelled, stats);
        }
        self.cache = cache;
        let sat_model = {
            let _span = rzen_obs::span!("bdd.any_sat");
            self.m.any_sat(b)
        };
        self.m.set_budget(None, None);
        let Some(model) = sat_model else {
            return (SolveOutcome::Unsat, stats);
        };
        let mut level_bits: FastHashMap<u32, bool> = FastHashMap::default();
        for (level, val) in model {
            level_bits.insert(level, val);
        }
        let env = env_from_levels(ctx, &self.order, |level| {
            level_bits.get(&level).copied().unwrap_or(false)
        });
        (SolveOutcome::Sat(env), stats)
    }
}

fn bdd_stats_delta(after: &BddStats, before: &BddStats) -> BddStats {
    BddStats {
        // Arena and unique table are session gauges, not per-query
        // counters; report their current size.
        nodes: after.nodes,
        unique_entries: after.unique_entries,
        cache_lookups: after.cache_lookups - before.cache_lookups,
        cache_hits: after.cache_hits - before.cache_hits,
    }
}
