//! Offline drop-in replacement for the subset of the `criterion` API this
//! workspace's benches use. The build environment has no reachable
//! crates.io mirror, so the real crate cannot be fetched; this stub keeps
//! `cargo bench` working with honest (if statistically unsophisticated)
//! wall-clock measurements: each benchmark runs one warmup iteration and
//! `sample_size` timed iterations, then prints min/mean/max.
//!
//! No HTML reports, no outlier analysis, no saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.into(), 10, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.0);
        let mut b = Bencher {
            n: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b, input);
        report(&label, &b.samples);
        self
    }

    pub fn finish(self) {}
}

/// A benchmark identifier: `BenchmarkId::new("impl", parameter)`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

pub struct Bencher {
    n: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Run the closure repeatedly, timing each run. The enclosing
    /// benchmark decides the sample count; `iter` records one sample per
    /// invocation of the closure.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let n = self.n.max(1);
        // One untimed warmup run.
        black_box(f());
        for _ in 0..n {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_one(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        n: sample_size,
        samples: Vec::new(),
    };
    f(&mut b);
    report(label, &b.samples);
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{label:<50} time: [{} {} {}]  ({} samples)",
        fmt_dur(*min),
        fmt_dur(mean),
        fmt_dur(*max),
        samples.len()
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Upstream builds a configurable harness here; the stub just collects the
/// target functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); this
            // simple runner has no options to parse, so they are ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion::default();
        let mut ran = 0usize;
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(3);
            g.bench_with_input(BenchmarkId::new("sq", 4usize), &4usize, |b, &n| {
                b.iter(|| {
                    ran += 1;
                    n * n
                })
            });
            g.finish();
        }
        // 1 warmup + 3 samples.
        assert_eq!(ran, 4);
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
    }
}
