//! Offline drop-in replacement for the subset of the `proptest` API this
//! workspace uses. The build environment has no reachable crates.io
//! mirror, so the real crate cannot be fetched; this stub keeps the
//! property-test files compiling and *meaningful*: each `proptest!` test
//! runs `ProptestConfig::cases` random cases drawn from the same strategy
//! expressions, seeded deterministically per case index so failures are
//! reproducible by rerunning the suite.
//!
//! Intentional simplifications versus upstream:
//!
//! * **No shrinking.** A failing case reports its case index and message;
//!   rerunning reproduces it exactly (generation is a pure function of the
//!   case index), but the input is not minimized.
//! * **No persistence files.** There is no `proptest-regressions/`.
//! * `prop_recursive(depth, ..)` honors `depth` but ignores the expected
//!   size and branch hints; recursion probability is fixed at 1/2 per
//!   level, which keeps generated trees small.
//!
//! Set `PROPTEST_CASES` to override the number of cases globally.

use std::rc::Rc;

// ---------------------------------------------------------------------------
// Deterministic generator
// ---------------------------------------------------------------------------

/// SplitMix64 generator driving all strategies. Purely determined by its
/// seed, which the `proptest!` macro derives from the case index.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        };
        let _ = rng.next_u64();
        rng
    }

    /// Seed for case `case` of the test named `name` (the name keeps
    /// sibling tests in one file from seeing identical streams).
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(h ^ case.wrapping_mul(0x2545_F491_4F6C_DD1D))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A generator of values of one type. Upstream proptest separates
/// strategies from value trees (for shrinking); without shrinking the
/// strategy *is* the generator.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Recursive strategies: `f` maps a strategy for depth-`k` values to a
    /// strategy for depth-`k+1` values; the result draws leaves and
    /// recursive cases with equal probability at every level, up to
    /// `depth` levels of recursion.
    fn prop_recursive<F, S2>(
        self,
        depth: u32,
        _expected_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = f(cur).boxed();
            cur = Union {
                options: vec![leaf.clone(), deeper],
            }
            .boxed();
        }
        cur
    }
}

/// Type-erased, cheaply clonable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed alternatives; what `prop_oneof!` builds.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Arbitrary + any
// ---------------------------------------------------------------------------

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: ranges and tuples
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: an exact `usize` or a half-open
    /// `Range<usize>`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_exclusive - self.size.lo;
            let len = self.size.lo + rng.below(span.max(1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Config + errors + runner support
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property assertion (the message).
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

pub type TestCaseResult = Result<(), TestCaseError>;

/// Effective case count: `PROPTEST_CASES` env override, else the config.
pub fn resolved_cases(config_cases: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.parse().unwrap_or(config_cases),
        Err(_) => config_cases,
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// The test-definition macro. Supports the subset of upstream syntax used
/// in this repository: an optional `#![proptest_config(..)]` header and
/// `fn name(pat in strategy, ..) { .. }` items with outer attributes.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            // The call sites carry their own `#[test]` attribute (same as
            // upstream proptest), forwarded through `$meta`.
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let cases = $crate::resolved_cases(config.cases);
                for case in 0..cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case as u64);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    #[allow(unreachable_code)]
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), case, cases, e.0
                        );
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{:?}` == `{:?}` ({})",
                l, r,
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{:?}` != `{:?}` ({})",
                l, r,
                format!($($fmt)+)
            )));
        }
    }};
}

// ---------------------------------------------------------------------------
// Prelude
// ---------------------------------------------------------------------------

pub mod prelude {
    /// Upstream exposes the crate under the alias `prop` in the prelude
    /// (`prop::collection::vec(..)`).
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_and_map_compose() {
        let s = prop_oneof![Just(1u32), (10u32..20).prop_map(|x| x * 2)];
        let mut rng = crate::TestRng::from_seed(3);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v == 1 || (20..40).contains(&v), "got {v}");
        }
    }

    #[test]
    fn recursion_is_bounded() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = any::<u8>()
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 64, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = crate::TestRng::from_seed(9);
        for _ in 0..200 {
            assert!(depth(&s.generate(&mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(x in 0u32..50, flip in any::<bool>()) {
            prop_assert!(x < 50);
            if flip { return Ok(()); }
            prop_assert_ne!(x, 50, "x was {}", x);
        }
    }
}
