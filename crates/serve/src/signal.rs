//! Zero-dependency SIGINT/SIGTERM hook.
//!
//! The handler does the only async-signal-safe thing available to it — a
//! relaxed atomic store — and the accept loop polls the flag between
//! (nonblocking) accepts. No self-pipe, no extra thread: the loop already
//! wakes every few milliseconds, so the added shutdown latency is one
//! poll interval.

use std::sync::atomic::{AtomicBool, Ordering};

static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::{Ordering, SIGNALLED};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // libc's simplified installer is all we need: no sigaction flags,
        // no mask. Returning the previous handler (which we ignore).
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(sig: i32) {
        // Async-signal-safe by construction: an atomic store plus a
        // re-arm. `signal()` may reset the disposition to default on
        // delivery (SysV semantics); re-installing here keeps a second
        // ctrl-c from killing the process mid-drain.
        SIGNALLED.store(true, Ordering::Relaxed);
        unsafe { signal(sig, on_signal) };
    }

    pub(super) fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {}
}

/// Install the SIGINT/SIGTERM handler (no-op off unix). Idempotent.
pub fn install() {
    imp::install();
}

/// Has a termination signal arrived since [`install`]?
pub fn triggered() -> bool {
    SIGNALLED.load(Ordering::Relaxed)
}
