//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response line per request, always in order
//! per connection. Requests:
//!
//! ```text
//! {"op":"reach","src":"u1:1","dst":"u3:2"}
//! {"id":7,"op":"drops","src":"u1:1","dst":"u3:2","timeout_ms":500}
//! {"op":"hsa","src":"u1:1","dst":"u3:2"}
//! {"op":"paths","src":"u1:1","dst":"u3:2"}
//! ```
//!
//! `id` is an optional client-chosen correlation number echoed back
//! verbatim; `timeout_ms` overrides the server's default per-request
//! deadline (measured from *admission*, so time spent queued counts).
//! Responses carry a `verdict` string identical to the `rzen-cli batch`
//! verdict vocabulary (`sat`/`unsat`/`timeout`/`cancelled`/`error`), or a
//! single `error` member (`"overloaded"` when the request was shed,
//! `"shutting_down"` during drain).

use rzen_engine::{QueryResult, Verdict, Witness};
use rzen_net::headers::Header;
use rzen_net::ip::fmt_ip;
use rzen_obs::json::{escape, parse, Value};

/// A parsed request line.
pub struct Request {
    /// Client correlation id, echoed back in the response.
    pub id: Option<u64>,
    /// What to do.
    pub op: Op,
    /// Per-request deadline override, milliseconds.
    pub timeout_ms: Option<u64>,
}

/// The operation of one request.
pub enum Op {
    /// Find a packet delivered from `src` to `dst` on some simple path.
    Reach {
        /// Entry endpoint, `device:port`.
        src: String,
        /// Exit endpoint, `device:port`.
        dst: String,
    },
    /// Find a packet dropped on every simple path from `src` to `dst`.
    Drops {
        /// Entry endpoint, `device:port`.
        src: String,
        /// Exit endpoint, `device:port`.
        dst: String,
    },
    /// Exact reachable-set size via header-space transformers.
    Hsa {
        /// Entry endpoint, `device:port`.
        src: String,
        /// Exit endpoint, `device:port`.
        dst: String,
    },
    /// Count simple paths between the endpoints.
    Paths {
        /// Entry endpoint, `device:port`.
        src: String,
        /// Exit endpoint, `device:port`.
        dst: String,
    },
    /// Debug-only (`debug_ops`): occupy a worker for `ms` milliseconds.
    /// Exists so tests can deterministically fill the admission queue.
    Sleep {
        /// How long to hold the worker.
        ms: u64,
    },
}

impl Op {
    /// The op name, echoed in responses.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Reach { .. } => "reach",
            Op::Drops { .. } => "drops",
            Op::Hsa { .. } => "hsa",
            Op::Paths { .. } => "paths",
            Op::Sleep { .. } => "sleep",
        }
    }
}

/// Parse one request line. `debug_ops` gates the test-only `sleep` op so
/// a production server never exposes it.
pub fn parse_request(line: &str, debug_ops: bool) -> Result<Request, String> {
    let v = parse(line).map_err(|e| format!("bad json: {e}"))?;
    let id = v.get("id").and_then(Value::as_u64);
    let op_name = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing \"op\"".to_string())?;
    let timeout_ms = v.get("timeout_ms").and_then(Value::as_u64);
    let endpoint = |key: &str| -> Result<String, String> {
        v.get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("op {op_name:?} needs \"{key}\""))
    };
    let op = match op_name {
        "reach" => Op::Reach {
            src: endpoint("src")?,
            dst: endpoint("dst")?,
        },
        "drops" => Op::Drops {
            src: endpoint("src")?,
            dst: endpoint("dst")?,
        },
        "hsa" => Op::Hsa {
            src: endpoint("src")?,
            dst: endpoint("dst")?,
        },
        "paths" => Op::Paths {
            src: endpoint("src")?,
            dst: endpoint("dst")?,
        },
        "sleep" if debug_ops => Op::Sleep {
            ms: v
                .get("ms")
                .and_then(Value::as_u64)
                .ok_or_else(|| "op \"sleep\" needs \"ms\"".to_string())?,
        },
        other => return Err(format!("unknown op {other:?}")),
    };
    Ok(Request { id, op, timeout_ms })
}

/// One response line (newline-terminated) carrying only an error. `req`
/// is the server-minted request id (0 = omit), echoed so a failed
/// request can still be found in `/debug/requests`.
pub fn error_response(id: Option<u64>, req: u64, error: &str) -> String {
    let mut b = Body::with_id(id);
    if req != 0 {
        b.num("req", req);
    }
    b.str("error", error);
    b.line()
}

/// Human-readable concrete header, same shape the CLI prints.
pub fn describe_header(h: &Header) -> String {
    format!(
        "dst={} src={} dport={} sport={} proto={}",
        fmt_ip(h.dst_ip),
        fmt_ip(h.src_ip),
        h.dst_port,
        h.src_port,
        h.protocol
    )
}

fn describe_witness(w: &Witness) -> String {
    match w {
        Witness::Header(h) => describe_header(h),
        Witness::Packet(p) => describe_header(&p.overlay_header),
        Witness::Announcement(_) => "announcement".to_string(),
    }
}

/// The response line for an engine verdict. The `verdict` vocabulary is
/// byte-identical to `rzen-cli batch --verdicts-json`, so a query set
/// replayed through the server diffs clean against the batch path. `req`
/// is the server-minted request id (0 = omit) that the flight recorder
/// and trace spans carry for this request.
pub fn verdict_response(
    id: Option<u64>,
    req: u64,
    op: &'static str,
    result: &QueryResult,
    coalesced: bool,
) -> String {
    let mut out = String::from("{");
    if let Some(id) = id {
        out.push_str(&format!("\"id\":{id},"));
    }
    if req != 0 {
        out.push_str(&format!("\"req\":{req},"));
    }
    out.push_str(&format!("\"op\":\"{op}\","));
    let verdict = match &result.verdict {
        Verdict::Sat(_) => "sat",
        Verdict::Unsat => "unsat",
        Verdict::Timeout => "timeout",
        Verdict::Cancelled => "cancelled",
        Verdict::Error(_) => "error",
    };
    out.push_str(&format!("\"verdict\":\"{verdict}\""));
    if let Verdict::Sat(w) = &result.verdict {
        out.push_str(&format!(
            ",\"witness\":\"{}\"",
            escape(&describe_witness(w))
        ));
    }
    if let Verdict::Error(msg) = &result.verdict {
        out.push_str(&format!(",\"error\":\"{}\"", escape(msg)));
    }
    match result.winner {
        Some(rzen::Backend::Bdd) => out.push_str(",\"winner\":\"bdd\""),
        Some(rzen::Backend::Smt) => out.push_str(",\"winner\":\"smt\""),
        None => {}
    }
    out.push_str(&format!(
        ",\"cache_hit\":{},\"coalesced\":{coalesced},\"latency_us\":{}}}\n",
        result.cache_hit,
        result.latency.as_micros()
    ));
    out
}

/// A tiny ordered JSON-object builder for the non-verdict responses.
#[derive(Default)]
pub struct Body {
    parts: Vec<String>,
}

impl Body {
    /// Empty object.
    pub fn new() -> Body {
        Body::default()
    }

    /// With the optional correlation id first, matching requests.
    pub fn with_id(id: Option<u64>) -> Body {
        let mut b = Body::new();
        if let Some(id) = id {
            b.num("id", id);
        }
        b
    }

    /// Append an unsigned number member.
    pub fn num(&mut self, key: &str, v: u64) -> &mut Body {
        self.parts.push(format!("\"{}\":{v}", escape(key)));
        self
    }

    /// Append a float member, rendered with Rust's shortest round-trip
    /// formatting. JSON has no NaN/Infinity tokens, so non-finite values
    /// render as `null` rather than emitting invalid JSON.
    pub fn float(&mut self, key: &str, v: f64) -> &mut Body {
        let rendered = if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        };
        self.parts.push(format!("\"{}\":{rendered}", escape(key)));
        self
    }

    /// Append a string member.
    pub fn str(&mut self, key: &str, v: &str) -> &mut Body {
        self.parts
            .push(format!("\"{}\":\"{}\"", escape(key), escape(v)));
        self
    }

    /// Append a boolean member.
    pub fn bool(&mut self, key: &str, v: bool) -> &mut Body {
        self.parts.push(format!("\"{}\":{v}", escape(key)));
        self
    }

    /// Render as one `{...}` line with a trailing newline.
    pub fn line(&self) -> String {
        format!("{{{}}}\n", self.parts.join(","))
    }

    /// Render as one `{...}` document without the newline (HTTP bodies).
    pub fn document(&self) -> String {
        format!("{{{}}}", self.parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_request_shape() {
        let r = parse_request(
            "{\"id\":7,\"op\":\"drops\",\"src\":\"u1:1\",\"dst\":\"u3:2\",\"timeout_ms\":500}",
            false,
        )
        .unwrap();
        assert_eq!(r.id, Some(7));
        assert_eq!(r.timeout_ms, Some(500));
        let Op::Drops { src, dst } = r.op else {
            panic!("wrong op");
        };
        assert_eq!((src.as_str(), dst.as_str()), ("u1:1", "u3:2"));
    }

    #[test]
    fn sleep_is_gated_behind_debug_ops() {
        let line = "{\"op\":\"sleep\",\"ms\":5}";
        assert!(parse_request(line, false).is_err());
        assert!(matches!(
            parse_request(line, true).unwrap().op,
            Op::Sleep { ms: 5 }
        ));
    }

    #[test]
    fn rejects_malformed_requests() {
        for line in [
            "",
            "not json",
            "{}",
            "{\"op\":\"warp\"}",
            "{\"op\":\"reach\",\"src\":\"u1:1\"}",
        ] {
            assert!(parse_request(line, true).is_err(), "{line:?} accepted");
        }
    }

    #[test]
    fn floats_round_trip_and_non_finite_degrades_to_null() {
        let mut b = Body::new();
        b.float("a", 13.870_312_5).float("b", f64::INFINITY);
        let line = b.line();
        rzen_obs::json::validate(line.trim()).unwrap();
        let v = parse(line.trim()).unwrap();
        assert!(matches!(v.get("a"), Some(Value::Num(n)) if *n == 13.870_312_5));
        assert!(matches!(v.get("b"), Some(Value::Null)));
    }

    #[test]
    fn responses_are_valid_json_lines() {
        let e = error_response(Some(3), 99, "overloaded");
        rzen_obs::json::validate(e.trim()).unwrap();
        assert!(e.contains("\"req\":99"));
        let bare = error_response(None, 0, "overloaded");
        rzen_obs::json::validate(bare.trim()).unwrap();
        assert!(!bare.contains("req"));
        let mut b = Body::with_id(None);
        b.str("status", "ok")
            .num("inflight", 0)
            .bool("draining", false);
        rzen_obs::json::validate(b.line().trim()).unwrap();
    }
}
