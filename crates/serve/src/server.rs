//! The server: accept loop, bounded admission queue, worker pool with
//! warm solver sessions, in-flight coalescing, model hot-swap, and
//! graceful drain.
//!
//! ## Threads
//!
//! One nonblocking accept thread, one thread per connection (requests on
//! a connection are answered in order), and `jobs` worker threads pulling
//! from one bounded queue. Workers own the solver state: each holds an
//! [`rzen_engine::ServeWorker`] — with sessions enabled, persistent
//! per-backend solver threads that stay warm across requests.
//!
//! ## Admission
//!
//! A request is admitted by reserving a slot in a
//! [`std::sync::mpsc::sync_channel`] bounded at `backlog`; a full queue
//! sheds the request with an explicit `overloaded` response — the client
//! is never left hanging. The per-request [`rzen::Budget`] is created at
//! admission, so time spent queued counts against the deadline and a
//! request that expires in the queue degrades to a `timeout` verdict
//! instead of wasting solver time.
//!
//! ## Coalescing
//!
//! Identical concurrent queries coalesce through the engine's in-flight
//! table ([`rzen_engine::Engine::admit`]): the first arrival leads and
//! occupies a queue slot; identical arrivals while it runs join, wait on
//! the leader's verdict, and consume no queue slot at all. If the leader
//! is shed, joiners are released with `overloaded` rather than hanging.
//!
//! ## Hot swap and deltas
//!
//! `POST /model` re-parses a spec off the connection thread, then swaps
//! the shared model pointer atomically, clears the engine's result
//! cache, and quiesces worker sessions. Requests admitted before the
//! swap keep their `Arc` to the old model and finish against it;
//! requests admitted after see only the new one. There is no window
//! where a request observes half of each. Re-posting a spec whose
//! composite fingerprint matches the running model is a no-op
//! (`"swapped":false`): cache and sessions stay warm.
//!
//! `POST /delta` applies an NDJSON sequence of [`rzen_delta::DeltaOp`]s
//! to a clone of the running spec and publishes the patched model with
//! the same pointer-store atomicity — but instead of clearing the cache
//! it runs the engine's dependency-aware sweep, evicting only entries
//! whose cone of influence an op touched, and leaves every warm session
//! alone. Model mutations are serialized by `Shared::swap`; `/healthz`
//! reports the composite fingerprint and the mutation generation.
//!
//! ## Drain
//!
//! Shutdown (SIGTERM/ctrl-c via [`crate::signal`], or
//! [`ServerHandle::shutdown`]) stops the accept loop, marks the server
//! draining (new requests answered `shutting_down`), waits for every
//! admitted job to finish and be answered, unblocks and joins the
//! connection threads, then retires the workers.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use rzen::Budget;
use rzen_engine::{
    Admission, Engine, EngineConfig, Joined, LeadGuard, Query, QueryBackend, QueryResult,
    ServeWorker, Verdict,
};
use rzen_net::spec::{self, Spec};

use crate::proto::{self, Body, Op};
use crate::signal;

/// Which connection layer drives the server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoopMode {
    /// Thread-per-connection over blocking sockets (the original layer).
    Threads,
    /// One epoll reactor thread multiplexing every connection, with
    /// shared-nothing engine shards behind SPSC rings (`rzen-loop`).
    /// Falls back to [`LoopMode::Threads`] on targets without the raw
    /// epoll backend.
    Epoll,
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`host:port`; port 0 picks a free one).
    pub addr: String,
    /// Worker threads (concurrent query executions).
    pub jobs: usize,
    /// Admitted-but-not-yet-running jobs beyond the workers; a request
    /// arriving past this bound is shed with `overloaded`.
    pub backlog: usize,
    /// Default per-request deadline; `None` = unlimited.
    pub timeout: Option<Duration>,
    /// Keep warm per-worker solver sessions.
    pub sessions: bool,
    /// Backend selection for engine queries.
    pub backend: QueryBackend,
    /// React to SIGINT/SIGTERM (the CLI sets this; tests drive
    /// [`ServerHandle::shutdown`] instead).
    pub handle_signals: bool,
    /// Expose the test-only `sleep` op.
    pub debug_ops: bool,
    /// Sampler wake rate for `/debug/profile` captures, in Hz.
    pub sample_hz: u32,
    /// Connection layer: thread-per-connection or the epoll reactor.
    pub loop_mode: LoopMode,
    /// Engine shards behind the epoll reactor; 0 means "same as `jobs`".
    /// Ignored in [`LoopMode::Threads`].
    pub shards: usize,
    /// Close connections with no traffic for this long; `None` disables
    /// reaping. Connections with work in flight are never reaped.
    pub idle_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs: 2,
            backlog: 64,
            timeout: Some(Duration::from_secs(30)),
            sessions: false,
            backend: QueryBackend::Portfolio,
            handle_signals: false,
            debug_ops: false,
            sample_hz: rzen_obs::profile::DEFAULT_SAMPLE_HZ,
            loop_mode: LoopMode::Threads,
            shards: 0,
            idle_timeout: None,
        }
    }
}

/// One loaded network model. Immutable once built; hot-swap replaces the
/// whole `Arc`.
pub struct Model {
    /// The parsed spec.
    pub spec: Spec,
    /// The Merkle-style composite model fingerprint
    /// ([`rzen_delta::composite_fingerprint`]): the hash of the ordered
    /// per-device structural fingerprints, reported by `/healthz` so
    /// clients can tell which model answered. Structural, not textual —
    /// re-posting a reformatted spec yields the same identity, and a
    /// delta moves only the touched devices' leaf hashes.
    pub fingerprint: u64,
}

impl Model {
    /// Parse a spec text into a model.
    pub fn parse(text: &str) -> Result<Model, String> {
        Ok(Model::from_spec(spec::parse(text)?))
    }

    /// Wrap an already-parsed (e.g. delta-patched) spec in a model.
    pub fn from_spec(spec: Spec) -> Model {
        let fingerprint = rzen_delta::composite_fingerprint(&spec.net);
        Model { spec, fingerprint }
    }
}

pub(crate) struct Shared {
    pub(crate) cfg: ServerConfig,
    pub(crate) engine: Engine,
    pub(crate) model: RwLock<Arc<Model>>,
    /// Serializes model mutations (`POST /model`, `POST /delta`): each is
    /// a read-modify-write of the model pointer plus a cache
    /// transition, and interleaving two would lose one of them. Query
    /// admission never takes this lock — it only reads the pointer.
    pub(crate) swap: Mutex<()>,
    /// Counts accepted model mutations (swaps and deltas); reported by
    /// `/healthz` and in mutation responses so a client can tell which
    /// model lineage answered.
    pub(crate) generation: AtomicU64,
    /// Bumped when worker sessions must be rebuilt (full model swap).
    /// Deltas leave it alone: session caches key on hash-consed
    /// expression ids, so unchanged sub-circuits stay warm and changed
    /// ones get new ids — nothing stale can be served.
    pub(crate) session_epoch: AtomicU64,
    /// The admission queue sender; `None` once the drain retired it
    /// (always `None` in epoll mode — the reactor routes to shard rings).
    jobs_tx: Mutex<Option<mpsc::SyncSender<Job>>>,
    /// Stop accepting connections.
    pub(crate) shutdown: AtomicBool,
    /// Stop admitting requests (drain phase).
    pub(crate) draining: AtomicBool,
    /// Jobs admitted (queued or running) and not yet answered.
    pub(crate) admitted: AtomicUsize,
    /// Connection threads currently processing a request (from read to
    /// response-write completion). The drain waits for this to hit zero
    /// before closing sockets, so an in-flight verdict is never lost to
    /// a socket shutdown racing its own write.
    busy_conns: AtomicUsize,
    /// Socket clones for unblocking connection readers at drain, keyed by
    /// connection id. An entry lives exactly as long as its connection
    /// thread: [`handle_conn`]'s scope guard removes it when the client
    /// goes away, so connection churn (every `/healthz` scrape opens a
    /// fresh socket) does not accumulate dead file descriptors. Unused
    /// in epoll mode (the reactor owns its connections outright).
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Connection id allocator for [`Shared::conns`] keys.
    conn_seq: AtomicU64,
}

impl Shared {
    /// Assemble the shared state for either connection layer.
    pub(crate) fn new(cfg: ServerConfig, model: Model, engine: Engine) -> Shared {
        Shared {
            cfg,
            engine,
            model: RwLock::new(Arc::new(model)),
            swap: Mutex::new(()),
            generation: AtomicU64::new(0),
            session_epoch: AtomicU64::new(0),
            jobs_tx: Mutex::new(None),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            admitted: AtomicUsize::new(0),
            busy_conns: AtomicUsize::new(0),
            conns: Mutex::new(HashMap::new()),
            conn_seq: AtomicU64::new(0),
        }
    }
}

/// The `serve.open_connections` gauge, shared by both connection layers.
pub(crate) fn open_conns_gauge() -> &'static rzen_obs::Gauge {
    rzen_obs::gauge!(
        "serve.open_connections",
        "client connections currently open"
    )
}

/// Removes this connection's socket clone from [`Shared::conns`] when the
/// connection thread exits — on any path, including a panic.
struct ConnGuard {
    shared: Arc<Shared>,
    id: u64,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.shared.conns.lock().unwrap().remove(&self.id);
        open_conns_gauge().add(-1);
    }
}

/// Handles for nudging epoll-mode shard threads: a cache transition
/// queued on the engine's cache log is only applied when a shard passes
/// its catch-up point, and a shard with an empty job ring parks — the
/// unpark gets it there promptly instead of at its next park timeout.
#[derive(Clone)]
pub(crate) struct ShardWake {
    pub(crate) threads: Vec<thread::Thread>,
}

impl ShardWake {
    pub(crate) fn wake_all(&self) {
        for t in &self.threads {
            t.unpark();
        }
    }
}

/// How a finished job classified itself, for the flight record and the
/// error counters kept by the connection thread's outer wrapper.
#[derive(Clone, Copy)]
pub(crate) struct RespMeta {
    pub(crate) verdict: rzen_obs::VerdictClass,
    pub(crate) backend: rzen_obs::BackendClass,
    pub(crate) flags: u8,
    /// Heap bytes/allocations the worker spent on this job, measured as
    /// a delta of its thread tally around execution. Zero unless
    /// profiling was enabled while the job ran.
    pub(crate) alloc_bytes: u64,
    pub(crate) alloc_count: u64,
}

impl Default for RespMeta {
    fn default() -> Self {
        RespMeta {
            verdict: rzen_obs::VerdictClass::Ok,
            backend: rzen_obs::BackendClass::None,
            flags: 0,
            alloc_bytes: 0,
            alloc_count: 0,
        }
    }
}

/// One admitted unit of work, executed on a worker thread.
struct Job {
    work: Work,
    budget: Budget,
    /// Request identity minted at admission; rides the worker's spans.
    ctx: rzen_obs::RequestCtx,
    /// The rendered response line (plus its classification) goes back to
    /// the connection thread.
    reply: mpsc::Sender<(String, RespMeta)>,
}

enum Work {
    /// An engine query led by this request (joiners wait on the guard).
    Query {
        id: Option<u64>,
        op: &'static str,
        query: Box<Query>,
        guard: LeadGuard,
    },
    /// Exact reachable-set size (header-space transformers).
    Hsa {
        id: Option<u64>,
        src: (usize, u8),
        dst: (usize, u8),
        model: Arc<Model>,
    },
    /// Simple-path count.
    Paths {
        id: Option<u64>,
        src: (usize, u8),
        dst: (usize, u8),
        model: Arc<Model>,
    },
    /// Debug: hold the worker.
    Sleep { id: Option<u64>, ms: u64 },
}

impl Work {
    /// The client correlation id, for answering on the panic path.
    fn id(&self) -> Option<u64> {
        match self {
            Work::Query { id, .. }
            | Work::Hsa { id, .. }
            | Work::Paths { id, .. }
            | Work::Sleep { id, .. } => *id,
        }
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] then [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    inner: HandleInner,
}

enum HandleInner {
    Threads {
        shared: Arc<Shared>,
        accept: thread::JoinHandle<()>,
    },
    Epoll {
        ctl: Arc<crate::eloop::EpollCtl>,
        reactor: thread::JoinHandle<()>,
    },
}

impl ServerHandle {
    /// The bound address (with the real port when the config said 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Jobs admitted and not yet answered (queued + running).
    pub fn inflight(&self) -> usize {
        self.shared().admitted.load(Ordering::SeqCst)
    }

    /// Live connections currently tracked. Closed connections are
    /// removed as they go, so this must not grow with connection churn —
    /// tests assert on it to catch fd leaks.
    pub fn open_conns(&self) -> usize {
        match &self.inner {
            HandleInner::Threads { shared, .. } => shared.conns.lock().unwrap().len(),
            HandleInner::Epoll { ctl, .. } => ctl.open_conns(),
        }
    }

    /// Begin graceful shutdown: stop accepting, drain in-flight work,
    /// answer stragglers `shutting_down`. Returns immediately.
    pub fn shutdown(&self) {
        self.shared().shutdown.store(true, Ordering::SeqCst);
        if let HandleInner::Epoll { ctl, .. } = &self.inner {
            // The reactor may be parked in epoll_wait; the doorbell gets
            // it to the shutdown check immediately.
            ctl.doorbell.ring();
        }
    }

    /// Wait for the drain to complete and every thread to retire.
    pub fn join(self) {
        match self.inner {
            HandleInner::Threads { accept, .. } => {
                let _ = accept.join();
            }
            HandleInner::Epoll { reactor, .. } => {
                let _ = reactor.join();
            }
        }
    }

    fn shared(&self) -> &Shared {
        match &self.inner {
            HandleInner::Threads { shared, .. } => shared,
            HandleInner::Epoll { ctl, .. } => &ctl.shared,
        }
    }
}

/// Start a server for `model` under `cfg`. Returns once the listener is
/// bound and the workers are up; queries are answerable immediately.
pub fn start(cfg: ServerConfig, model: Model) -> io::Result<ServerHandle> {
    if cfg.handle_signals {
        signal::install();
    }
    if cfg.loop_mode == LoopMode::Epoll && rzen_loop::SUPPORTED {
        let (addr, ctl, reactor) = crate::eloop::start(cfg, model)?;
        return Ok(ServerHandle {
            addr,
            inner: HandleInner::Epoll { ctl, reactor },
        });
    }
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let engine = Engine::new(EngineConfig {
        jobs: cfg.jobs,
        backend: cfg.backend,
        timeout: cfg.timeout,
        cache: true,
        sessions: cfg.sessions,
    });
    let (tx, rx) = mpsc::sync_channel::<Job>(cfg.backlog);
    let jobs = cfg.jobs.max(1);
    let shared = Arc::new(Shared::new(cfg, model, engine));
    *shared.jobs_tx.lock().unwrap() = Some(tx);

    let rx = Arc::new(Mutex::new(rx));
    let mut workers = Vec::with_capacity(jobs);
    for w in 0..jobs {
        let shared = shared.clone();
        let rx = rx.clone();
        workers.push(thread::spawn(move || worker_loop(shared, rx, w)));
    }

    let accept = {
        let shared = shared.clone();
        thread::spawn(move || accept_loop(listener, shared, workers))
    };
    Ok(ServerHandle {
        addr,
        inner: HandleInner::Threads { shared, accept },
    })
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, workers: Vec<thread::JoinHandle<()>>) {
    let _span = rzen_obs::span!("serve.accept");
    let mut conn_threads: Vec<thread::JoinHandle<()>> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst)
            || (shared.cfg.handle_signals && signal::triggered())
        {
            break;
        }
        // Reap retired connection threads so the handle list tracks live
        // connections, not the connection count since boot.
        let mut i = 0;
        while i < conn_threads.len() {
            if conn_threads[i].is_finished() {
                let _ = conn_threads.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                rzen_obs::counter!("serve.connections", "TCP connections accepted").inc();
                open_conns_gauge().add(1);
                // Request/response lines are tiny; Nagle + delayed ACK
                // would add ~40ms to every exchange.
                let _ = stream.set_nodelay(true);
                let id = shared.conn_seq.fetch_add(1, Ordering::SeqCst);
                if let Ok(clone) = stream.try_clone() {
                    shared.conns.lock().unwrap().insert(id, clone);
                }
                let shared = shared.clone();
                conn_threads.push(thread::spawn(move || {
                    let _guard = ConnGuard {
                        shared: shared.clone(),
                        id,
                    };
                    handle_conn(stream, shared);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(3));
            }
            Err(_) => {
                // EMFILE, ECONNABORTED, EINTR, ...: all transient for a
                // listener. Shedding one accept must not kill the server;
                // back off and retry — shutdown is still the only exit.
                rzen_obs::counter!("serve.accept_errors", "transient accept() failures").inc();
                thread::sleep(Duration::from_millis(10));
            }
        }
    }
    drain(&shared, conn_threads, workers);
}

/// The drain sequence; see the module docs. Runs on the accept thread.
fn drain(
    shared: &Arc<Shared>,
    conns: Vec<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
) {
    let _span = rzen_obs::span!("serve.drain");
    shared.draining.store(true, Ordering::SeqCst);
    // Every admitted job gets solved, answered, *and written back* before
    // sockets close: `admitted` covers queued/running jobs, `busy_conns`
    // covers the response write itself.
    while shared.admitted.load(Ordering::SeqCst) > 0 || shared.busy_conns.load(Ordering::SeqCst) > 0
    {
        thread::sleep(Duration::from_millis(2));
    }
    // Unblock connection threads parked in read_line, then join them. A
    // request racing the draining flag is still answered: its job was
    // admitted before its socket shut down, and workers are still up.
    for (_, s) in shared.conns.lock().unwrap().drain() {
        let _ = s.shutdown(Shutdown::Both);
    }
    for h in conns {
        let _ = h.join();
    }
    while shared.admitted.load(Ordering::SeqCst) > 0 {
        thread::sleep(Duration::from_millis(2));
    }
    // All senders gone -> workers' recv errors out and they retire.
    shared.jobs_tx.lock().unwrap().take();
    for h in workers {
        let _ = h.join();
    }
}

fn worker_loop(shared: Arc<Shared>, rx: Arc<Mutex<mpsc::Receiver<Job>>>, w: usize) {
    let _span = rzen_obs::span!("serve.worker", "worker" => w as u64);
    let mut epoch = shared.session_epoch.load(Ordering::SeqCst);
    let mut solver = shared.engine.serve_worker();
    loop {
        // Hold the receiver lock only while waiting; execution happens
        // with it released so other workers can pick up jobs.
        let job = match rx.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => break,
        };
        let Ok(job) = job else { break };
        // A full model swap quiesces this worker's sessions: the old
        // solver (and its runner threads) retires between jobs, and a
        // fresh one starts cold. Deltas never bump the epoch — warm
        // sessions stay warm across them by design.
        let now = shared.session_epoch.load(Ordering::SeqCst);
        if now != epoch {
            epoch = now;
            solver = shared.engine.serve_worker();
            rzen_obs::counter!(
                "serve.session_rebuilds",
                "worker sessions quiesced and rebuilt by full model swaps"
            )
            .inc();
        }
        run_job(&shared, &solver, job);
        shared.admitted.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Execute one admitted job and answer its connection. Never unwinds:
/// engine queries catch panics internally, and `hsa`/`paths` run under
/// [`catch_unwind`] here — a panicking analysis answers an `error`
/// response and releases its queue slot instead of killing the worker
/// (which would leak an `admitted` count and wedge the drain forever).
fn run_job(shared: &Arc<Shared>, solver: &ServeWorker, job: Job) {
    let Job {
        work,
        budget,
        ctx,
        reply,
    } = job;
    let _span = rzen_obs::span!("serve.job", "req" => ctx.id);
    let id = work.id();
    let (alloc_bytes0, alloc_count0) = rzen_obs::profile::thread_alloc_stats();
    let mut resp = catch_unwind(AssertUnwindSafe(|| {
        run_work(shared, solver, work, budget, ctx)
    }))
    .unwrap_or_else(|_| {
        // The panic may have left the thread-local transformer arena
        // half-built; reset it so the next job on this worker starts
        // clean. A dropped LeadGuard already released any joiners.
        rzen::reset_ctx();
        rzen_obs::counter!("serve.job_panics", "jobs that panicked during execution").inc();
        (
            proto::error_response(id, ctx.id, "internal: analysis panicked"),
            RespMeta {
                verdict: rzen_obs::VerdictClass::Error,
                ..RespMeta::default()
            },
        )
    });
    let (alloc_bytes1, alloc_count1) = rzen_obs::profile::thread_alloc_stats();
    resp.1.alloc_bytes = alloc_bytes1.saturating_sub(alloc_bytes0);
    resp.1.alloc_count = alloc_count1.saturating_sub(alloc_count0);
    // A gone connection is not an error: the verdict was still published
    // to any coalesced joiners inside run_work.
    let _ = reply.send(resp);
}

fn run_work(
    shared: &Arc<Shared>,
    solver: &ServeWorker,
    work: Work,
    budget: Budget,
    ctx: rzen_obs::RequestCtx,
) -> (String, RespMeta) {
    let started = Instant::now();
    match work {
        Work::Query {
            id,
            op,
            query,
            guard,
        } => {
            // An exhausted budget (the request aged out in the queue)
            // still runs: the solvers observe it at their first poll and
            // the request degrades to `timeout` — while a result-cache
            // hit can still answer it for free.
            let result = shared.engine.run_one(&query, budget, solver, ctx);
            let resp = proto::verdict_response(id, ctx.id, op, &result, false);
            let mut flags = 0u8;
            if result.cache_hit {
                flags |= rzen_obs::flight::FLAG_CACHE_HIT;
            }
            if result.session.is_some() {
                flags |= rzen_obs::flight::FLAG_SESSION;
            }
            let meta = RespMeta {
                verdict: result.verdict.class(),
                backend: result.backend_class(),
                flags,
                ..RespMeta::default()
            };
            guard.publish(&result);
            (resp, meta)
        }
        Work::Hsa {
            id,
            src,
            dst,
            model,
        } => do_hsa(id, ctx.id, src, dst, &model, started),
        Work::Paths {
            id,
            src,
            dst,
            model,
        } => do_paths(id, ctx.id, src, dst, &model, started),
        Work::Sleep { id, ms } => do_sleep(id, ctx.id, ms, started),
    }
}

/// Exact reachable-set size (header-space transformers), shared by the
/// worker pool and the epoll shard loop. HSA builds transformer sets in
/// the thread-local context; reset on both sides so engine queries on
/// this thread never see a foreign arena.
pub(crate) fn do_hsa(
    id: Option<u64>,
    req_id: u64,
    src: (usize, u8),
    dst: (usize, u8),
    model: &Model,
    started: Instant,
) -> (String, RespMeta) {
    rzen::reset_ctx();
    let space = rzen::TransformerSpace::new();
    let set = rzen_net::analyses::hsa::reachable_set(&model.spec.net, &space, src.0, src.1, dst.0);
    let mut b = Body::with_id(id);
    b.num("req", req_id);
    b.str("op", "hsa").bool("reachable", !set.is_empty());
    if !set.is_empty() {
        b.float("log2_count", set.count().log2());
        if let Some(sample) = set.element() {
            b.str("sample", &proto::describe_header(&sample.overlay_header));
        }
    }
    rzen::reset_ctx();
    b.num("latency_us", started.elapsed().as_micros() as u64);
    (b.line(), RespMeta::default())
}

/// Simple-path count, shared by the worker pool and the shard loop.
pub(crate) fn do_paths(
    id: Option<u64>,
    req_id: u64,
    src: (usize, u8),
    dst: (usize, u8),
    model: &Model,
    started: Instant,
) -> (String, RespMeta) {
    let paths = model.spec.net.paths(src.0, src.1, dst.0, dst.1);
    let mut b = Body::with_id(id);
    b.num("req", req_id);
    b.str("op", "paths")
        .num("paths", paths.len() as u64)
        .num("latency_us", started.elapsed().as_micros() as u64);
    (b.line(), RespMeta::default())
}

/// Debug: hold the executing thread for `ms`.
pub(crate) fn do_sleep(
    id: Option<u64>,
    req_id: u64,
    ms: u64,
    started: Instant,
) -> (String, RespMeta) {
    thread::sleep(Duration::from_millis(ms));
    let mut b = Body::with_id(id);
    b.num("req", req_id);
    b.str("op", "sleep")
        .num("latency_us", started.elapsed().as_micros() as u64);
    (b.line(), RespMeta::default())
}

/// Was this read error the per-read idle timer firing (vs. a real error)?
/// The kind differs by platform: `WouldBlock` on Unix, `TimedOut` on
/// Windows.
fn is_read_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

pub(crate) fn idle_reaped_counter() -> &'static rzen_obs::Counter {
    rzen_obs::counter!(
        "serve.idle_reaped",
        "idle connections closed by --idle-timeout-ms"
    )
}

fn handle_conn(stream: TcpStream, shared: Arc<Shared>) {
    let _span = rzen_obs::span!("serve.conn");
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    // Idle reaping in threads mode rides the socket's own read timer:
    // the thread only ever blocks in read_line *between* requests (work
    // in flight keeps it out of the read), so a timed-out read is
    // precisely an idle connection.
    if let Some(idle) = shared.cfg.idle_timeout {
        let _ = read_half.set_read_timeout(Some(idle));
    }
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;

    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return,
        Err(e) => {
            if is_read_timeout(&e) && shared.cfg.idle_timeout.is_some() {
                idle_reaped_counter().inc();
            }
            return;
        }
        Ok(_) => {}
    }
    // One listener, two protocols: an HTTP request line is unmistakable,
    // everything else is the NDJSON query stream.
    if line.starts_with("GET ") || line.starts_with("POST ") || line.starts_with("HEAD ") {
        handle_http(&mut reader, &mut writer, &line, &shared);
        return;
    }
    loop {
        let trimmed = line.trim();
        if !trimmed.is_empty() {
            // Busy spans the whole request, response write included, so
            // the drain cannot close this socket under the write.
            shared.busy_conns.fetch_add(1, Ordering::SeqCst);
            let resp = handle_request(trimmed, &shared);
            let write = writer.write_all(resp.as_bytes());
            shared.busy_conns.fetch_sub(1, Ordering::SeqCst);
            if write.is_err() {
                break;
            }
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Err(e) => {
                if is_read_timeout(&e) && shared.cfg.idle_timeout.is_some() {
                    idle_reaped_counter().inc();
                    let _ = writer.shutdown(Shutdown::Both);
                }
                break;
            }
            Ok(_) => {}
        }
    }
}

/// Everything the outer wrapper knows about a request by the time it
/// answers — the raw material of its flight record.
#[derive(Default)]
struct ReqMeta {
    op: rzen_obs::flight::SmallStr,
    src: rzen_obs::flight::SmallStr,
    dst: rzen_obs::flight::SmallStr,
    /// Leader's request id when this request coalesced (0 otherwise).
    leader: u64,
    resp: RespMeta,
}

/// Answer one NDJSON request line (blocking until the verdict).
///
/// This outer wrapper owns everything that must happen on *every* path,
/// error responses included: minting the [`rzen_obs::RequestCtx`],
/// stamping the request span, the latency histogram, the
/// `serve.errors_total{kind=...}` counter, and the flight record. The
/// inner function only computes the response and classifies it.
fn handle_request(line: &str, shared: &Arc<Shared>) -> String {
    let started = Instant::now();
    let start_us = rzen_obs::flight::now_us();
    rzen_obs::counter!("serve.requests", "query requests received").inc();
    // The model pointer is captured here, before admission: a hot swap
    // between admission and execution must not change what this request
    // computes against. The request id is minted in the same breath so
    // the record carries exactly the model identity it ran under.
    let model = shared.model.read().unwrap().clone();
    let ctx =
        rzen_obs::RequestCtx::mint(model.fingerprint, shared.generation.load(Ordering::SeqCst));
    let _span = rzen_obs::span!("serve.request", "req" => ctx.id);
    let mut meta = ReqMeta::default();
    let resp = handle_request_inner(line, shared, model, ctx, started, &mut meta);
    observe_latency(started);
    if meta.resp.verdict.is_serve_error() {
        rzen_obs::metrics::registry()
            .counter_with(
                "serve.errors_total",
                "failed serve responses by failure kind",
                &[("kind", meta.resp.verdict.as_str())],
            )
            .inc();
    }
    rzen_obs::flight::record(rzen_obs::RequestRecord {
        id: ctx.id,
        start_us,
        latency_us: started.elapsed().as_micros() as u64,
        model: ctx.model,
        generation: ctx.generation,
        leader: meta.leader,
        op: meta.op,
        src: meta.src,
        dst: meta.dst,
        verdict: meta.resp.verdict,
        backend: meta.resp.backend,
        flags: meta.resp.flags,
        alloc_bytes: meta.resp.alloc_bytes,
        alloc_count: meta.resp.alloc_count,
        shard: ctx.shard,
    });
    resp
}

fn handle_request_inner(
    line: &str,
    shared: &Arc<Shared>,
    model: Arc<Model>,
    ctx: rzen_obs::RequestCtx,
    started: Instant,
    meta: &mut ReqMeta,
) -> String {
    use rzen_obs::flight::SmallStr;
    use rzen_obs::VerdictClass;
    let req = match proto::parse_request(line, shared.cfg.debug_ops) {
        Ok(r) => r,
        Err(e) => {
            rzen_obs::counter!("serve.bad_requests", "malformed request lines").inc();
            meta.resp.verdict = VerdictClass::BadRequest;
            return proto::error_response(None, ctx.id, &e);
        }
    };
    meta.op = SmallStr::new(req.op.name());
    match &req.op {
        Op::Reach { src, dst }
        | Op::Drops { src, dst }
        | Op::Hsa { src, dst }
        | Op::Paths { src, dst } => {
            meta.src = SmallStr::new(src);
            meta.dst = SmallStr::new(dst);
        }
        Op::Sleep { .. } => {}
    }
    if shared.draining.load(Ordering::SeqCst) || shared.shutdown.load(Ordering::SeqCst) {
        meta.resp.verdict = VerdictClass::ShuttingDown;
        return proto::error_response(req.id, ctx.id, "shutting_down");
    }
    // The budget starts at admission so queue wait consumes the deadline.
    let budget = match req
        .timeout_ms
        .map(Duration::from_millis)
        .or(shared.cfg.timeout)
    {
        Some(t) => Budget::with_timeout(t),
        None => Budget::unlimited(),
    };
    let id = req.id;
    let op_name = req.op.name();

    let resolve = |s: &str| model.spec.endpoint(s);
    let work = match &req.op {
        Op::Reach { src, dst } | Op::Drops { src, dst } => {
            let (src, dst) = match (resolve(src), resolve(dst)) {
                (Ok(s), Ok(d)) => (s, d),
                (Err(e), _) | (_, Err(e)) => {
                    meta.resp.verdict = VerdictClass::ResolveFailed;
                    return proto::error_response(id, ctx.id, &e);
                }
            };
            let query = if matches!(req.op, Op::Reach { .. }) {
                Query::Reach {
                    net: model.spec.net.clone(),
                    src,
                    dst,
                }
            } else {
                Query::Drops {
                    net: model.spec.net.clone(),
                    src,
                    dst,
                }
            };
            // Coalesce before consuming a queue slot: joiners ride the
            // leader's execution for free.
            match shared.engine.admit(&query, ctx.id) {
                Admission::Join(join) => {
                    rzen_obs::counter!(
                        "serve.coalesced",
                        "requests answered by joining an identical in-flight query"
                    )
                    .inc();
                    meta.resp.flags |= rzen_obs::flight::FLAG_COALESCED;
                    meta.leader = join.leader_id();
                    // The wait is bounded by *this* request's deadline: a
                    // short-budget joiner riding a long-budget leader must
                    // degrade to its own `timeout`, not wait the leader out.
                    return match join.wait_deadline(budget.deadline()) {
                        Joined::Verdict(result) => {
                            meta.resp.verdict = result.verdict.class();
                            meta.resp.backend = result.backend_class();
                            if result.cache_hit {
                                meta.resp.flags |= rzen_obs::flight::FLAG_CACHE_HIT;
                            }
                            proto::verdict_response(id, ctx.id, op_name, &result, true)
                        }
                        // The leader was shed (or died) without a verdict.
                        Joined::LeaderLost => {
                            meta.resp.verdict = VerdictClass::Overloaded;
                            proto::error_response(id, ctx.id, "overloaded")
                        }
                        Joined::Expired => {
                            rzen_obs::counter!(
                                "serve.join_timeouts",
                                "joiners whose own deadline passed before the leader published"
                            )
                            .inc();
                            meta.resp.verdict = VerdictClass::Timeout;
                            let timed_out = QueryResult {
                                index: 0,
                                kind: op_name,
                                verdict: Verdict::Timeout,
                                latency: started.elapsed(),
                                winner: None,
                                cache_hit: false,
                                sat_stats: None,
                                bdd_stats: None,
                                session: None,
                            };
                            proto::verdict_response(id, ctx.id, op_name, &timed_out, true)
                        }
                    };
                }
                Admission::Lead(guard) => Work::Query {
                    id,
                    op: op_name,
                    query: Box::new(query),
                    guard,
                },
            }
        }
        Op::Hsa { src, dst } => {
            let (src, dst) = match (resolve(src), resolve(dst)) {
                (Ok(s), Ok(d)) => (s, d),
                (Err(e), _) | (_, Err(e)) => {
                    meta.resp.verdict = VerdictClass::ResolveFailed;
                    return proto::error_response(id, ctx.id, &e);
                }
            };
            Work::Hsa {
                id,
                src,
                dst,
                model,
            }
        }
        Op::Paths { src, dst } => {
            let (src, dst) = match (resolve(src), resolve(dst)) {
                (Ok(s), Ok(d)) => (s, d),
                (Err(e), _) | (_, Err(e)) => {
                    meta.resp.verdict = VerdictClass::ResolveFailed;
                    return proto::error_response(id, ctx.id, &e);
                }
            };
            Work::Paths {
                id,
                src,
                dst,
                model,
            }
        }
        Op::Sleep { ms } => Work::Sleep { id, ms: *ms },
    };

    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        work,
        budget,
        ctx,
        reply: reply_tx,
    };
    let tx = shared.jobs_tx.lock().unwrap().clone();
    let Some(tx) = tx else {
        meta.resp.verdict = VerdictClass::ShuttingDown;
        return proto::error_response(id, ctx.id, "shutting_down");
    };
    // Reserve the in-flight slot before the send so the drain never
    // observes zero while a job sits in the queue.
    shared.admitted.fetch_add(1, Ordering::SeqCst);
    match tx.try_send(job) {
        Ok(()) => {}
        Err(mpsc::TrySendError::Full(job)) => {
            shared.admitted.fetch_sub(1, Ordering::SeqCst);
            rzen_obs::counter!(
                "serve.overloaded",
                "requests shed by the full admission queue"
            )
            .inc();
            // Dropping the job drops any LeadGuard inside: joiners wake
            // with `None` and get their own `overloaded`.
            drop(job);
            meta.resp.verdict = VerdictClass::Overloaded;
            return proto::error_response(id, ctx.id, "overloaded");
        }
        Err(mpsc::TrySendError::Disconnected(_)) => {
            shared.admitted.fetch_sub(1, Ordering::SeqCst);
            meta.resp.verdict = VerdictClass::ShuttingDown;
            return proto::error_response(id, ctx.id, "shutting_down");
        }
    }
    match reply_rx.recv() {
        Ok((resp, rmeta)) => {
            meta.resp = rmeta;
            resp
        }
        Err(_) => {
            meta.resp.verdict = VerdictClass::WorkerLost;
            proto::error_response(id, ctx.id, "internal: worker lost the reply")
        }
    }
}

pub(crate) fn observe_latency(started: Instant) {
    rzen_obs::histogram!(
        "serve.request_us",
        "request wall latency (admission to response) in microseconds"
    )
    .observe(started.elapsed().as_micros() as u64);
}

/// The HTTP/1.1 shim: health, metrics, and model hot-swap. One request
/// per connection (`Connection: close`).
fn handle_http(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    request_line: &str,
    shared: &Arc<Shared>,
) {
    let _span = rzen_obs::span!("serve.http");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    // `/debug/trace?ms=250` style targets: route on the path, keep the
    // query string for the handler.
    let (path, query) = target.split_once('?').unwrap_or((target, ""));

    // Headers are read under a fixed byte budget so a client streaming
    // header lines forever cannot pin this thread or its memory; past
    // the cap the request is answered with 431 and the connection
    // closed, per RFC 6585.
    const MAX_HEADER_BYTES: u64 = 8 << 10;
    let mut remaining = MAX_HEADER_BYTES;
    let mut content_length = 0usize;
    loop {
        if remaining == 0 {
            header_cap_exceeded(writer);
            return;
        }
        let mut line = String::new();
        match reader.by_ref().take(remaining).read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(n) => remaining -= n as u64,
        }
        if !line.ends_with('\n') {
            if remaining == 0 {
                // The budget ran out mid-line — cap, not EOF.
                header_cap_exceeded(writer);
                return;
            }
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap_or(0);
        }
    }

    // HEAD gets the same status line and headers as GET — Content-Length
    // included — but no body, as HTTP requires.
    let head = method == "HEAD";
    let answer = match (method, path) {
        ("POST", "/model") => {
            let Some(text) = read_post_body(reader, writer, content_length) else {
                return;
            };
            answer_model_post(shared, &text, None)
        }
        ("POST", "/delta") => {
            let Some(text) = read_post_body(reader, writer, content_length) else {
                return;
            };
            answer_delta_post(shared, &text, None)
        }
        _ => answer_http_get(method, path, query, shared),
    };
    http_respond(
        writer,
        answer.status,
        answer.content_type,
        &answer.body,
        head,
    );
    let _ = writer.flush();
    let _ = writer.shutdown(Shutdown::Both);
}

/// One rendered HTTP response, transport-agnostic: the blocking shim and
/// the epoll reactor both turn this into bytes on the wire.
pub(crate) struct HttpAnswer {
    pub(crate) status: u16,
    pub(crate) content_type: &'static str,
    pub(crate) body: String,
}

impl HttpAnswer {
    pub(crate) fn json(status: u16, body: String) -> HttpAnswer {
        HttpAnswer {
            status,
            content_type: "application/json",
            body,
        }
    }

    pub(crate) fn error(status: u16, msg: &str) -> HttpAnswer {
        let mut b = Body::new();
        b.str("error", msg);
        HttpAnswer::json(status, b.document())
    }
}

/// Route a bodyless (GET/HEAD) request. POSTs carry bodies and are
/// dispatched by the callers, which own body transport.
///
/// Beware: `/debug/trace` and `/debug/profile` *block for their capture
/// window* — the reactor must call this from an offload thread, never
/// inline.
pub(crate) fn answer_http_get(
    method: &str,
    path: &str,
    query: &str,
    shared: &Shared,
) -> HttpAnswer {
    if method != "GET" && method != "HEAD" {
        return HttpAnswer::error(404, "not found");
    }
    match path {
        "/healthz" => {
            let model = shared.model.read().unwrap().clone();
            let mut b = Body::new();
            b.str("status", "ok")
                .str("model", &format!("{:016x}", model.fingerprint))
                .num("generation", shared.generation.load(Ordering::SeqCst))
                .num("devices", model.spec.net.devices.len() as u64)
                .num("inflight", shared.admitted.load(Ordering::SeqCst) as u64)
                .bool("draining", shared.draining.load(Ordering::SeqCst));
            HttpAnswer::json(200, b.document())
        }
        "/metrics" => {
            // Registry metrics first, then the process-level series
            // (RSS, CPU seconds, fds, start time, build info) rendered
            // straight from /proc — those carry float values the integer
            // registry cannot hold.
            let mut text = rzen_obs::metrics::registry().render_prometheus();
            text.push_str(&rzen_obs::process::exposition(env!("CARGO_PKG_VERSION")));
            HttpAnswer {
                status: 200,
                content_type: "text/plain; version=0.0.4; charset=utf-8",
                body: text,
            }
        }
        "/debug/requests" => HttpAnswer::json(
            200,
            rzen_obs::flight::render_json(&rzen_obs::flight::snapshot()),
        ),
        "/debug/slow" => HttpAnswer::json(
            200,
            rzen_obs::flight::render_json(&rzen_obs::flight::slow_snapshot()),
        ),
        "/debug/trace" => {
            // Captures hold a serialized lock for the whole window, so
            // the window is client-chosen only up to MAX_CAPTURE_MS, and
            // garbage (non-numeric, negative) is a 400 rather than a
            // silently-defaulted capture.
            let ms = match capture_window_ms(query) {
                Ok(ms) => ms,
                Err(e) => return HttpAnswer::error(400, e),
            };
            HttpAnswer::json(200, capture_trace(Duration::from_millis(ms)))
        }
        "/debug/profile" => {
            let ms = match capture_window_ms(query) {
                Ok(ms) => ms,
                Err(e) => return HttpAnswer::error(400, e),
            };
            let heap = match query_param(query, "view").unwrap_or("cpu") {
                "cpu" => false,
                "heap" => true,
                _ => return HttpAnswer::error(400, "view must be cpu or heap"),
            };
            let svg = match query_param(query, "format").unwrap_or("folded") {
                "folded" => false,
                "svg" => true,
                _ => return HttpAnswer::error(400, "format must be folded or svg"),
            };
            let body = capture_profile(Duration::from_millis(ms), shared.cfg.sample_hz, heap, svg);
            HttpAnswer {
                status: 200,
                content_type: if svg {
                    "image/svg+xml"
                } else {
                    "text/plain; charset=utf-8"
                },
                body,
            }
        }
        _ => HttpAnswer::error(404, "not found"),
    }
}

/// `POST /model`: hot-swap the running model. With `wake` (epoll mode)
/// the cache transition is queued on the engine's cache log for the
/// shards to replay; without it (threads mode) the shared cache is
/// cleared inline. Either way the pointer swap itself is atomic and
/// in-flight requests finish against the `Arc` they captured.
pub(crate) fn answer_model_post(
    shared: &Shared,
    text: &str,
    wake: Option<&ShardWake>,
) -> HttpAnswer {
    let model = match Model::parse(text) {
        Ok(m) => m,
        Err(e) => return HttpAnswer::error(400, &e),
    };
    // Parse happened above, outside the lock; the swap itself is a
    // pointer store. In-flight requests hold their own Arc and finish
    // against the old model.
    let _swap = shared.swap.lock().unwrap();
    let current = shared.model.read().unwrap().clone();
    if current.fingerprint == model.fingerprint {
        // Same structural identity: re-posting the running model
        // (reformatted or not) keeps the cache and every warm session.
        rzen_obs::counter!(
            "serve.model_noop_swaps",
            "POST /model requests whose fingerprint matched the running model"
        )
        .inc();
        let mut b = Body::new();
        b.str("status", "ok")
            .bool("swapped", false)
            .str("model", &format!("{:016x}", current.fingerprint))
            .num("generation", shared.generation.load(Ordering::SeqCst))
            .num("devices", current.spec.net.devices.len() as u64);
        return HttpAnswer::json(200, b.document());
    }
    let model = Arc::new(model);
    *shared.model.write().unwrap() = model.clone();
    match wake {
        None => shared.engine.clear_cache(),
        Some(w) => {
            // Shards own their caches; queue the clear on the cache log
            // and nudge them. No need to wait for the replay: cache
            // entries key on the full query (model included), so a shard
            // that has not swept yet can never serve a stale verdict —
            // the sweep reclaims memory, it does not gate correctness.
            shared.engine.push_cache_clear();
            w.wake_all();
        }
    }
    // Sessions rebuilt: the whole model may have changed.
    shared.session_epoch.fetch_add(1, Ordering::SeqCst);
    let generation = shared.generation.fetch_add(1, Ordering::SeqCst) + 1;
    rzen_obs::counter!("serve.model_swaps", "successful POST /model swaps").inc();
    let mut b = Body::new();
    b.str("status", "ok")
        .bool("swapped", true)
        .str("model", &format!("{:016x}", model.fingerprint))
        .num("generation", generation)
        .num("devices", model.spec.net.devices.len() as u64);
    HttpAnswer::json(200, b.document())
}

/// `POST /delta`: patch the running model and run the dependency-aware
/// cache sweep. With `wake` (epoll mode) the sweep is queued for every
/// shard and awaited (bounded) so the response still reports real
/// evicted/retained counts; without it the shared cache is swept inline.
pub(crate) fn answer_delta_post(
    shared: &Shared,
    text: &str,
    wake: Option<&ShardWake>,
) -> HttpAnswer {
    let ops = match rzen_delta::parse_ops(text) {
        Ok(ops) if ops.is_empty() => return HttpAnswer::error(400, "empty delta"),
        Ok(ops) => ops,
        Err(e) => return HttpAnswer::error(400, &e),
    };
    // Same discipline as hot-swap: patch a clone off to the side, then
    // publish with one pointer store. A failing op discards the clone —
    // the running model is never half patched. In-flight requests keep
    // their admitted Arc.
    let _swap = shared.swap.lock().unwrap();
    let current = shared.model.read().unwrap().clone();
    let mut patched = current.spec.clone();
    let applied = match rzen_delta::apply_all(&mut patched, &ops) {
        Ok(applied) => applied,
        Err(e) => return HttpAnswer::error(400, &e),
    };
    let model = Arc::new(Model::from_spec(patched));
    *shared.model.write().unwrap() = model.clone();
    // The dependency-aware sweep replaces clear_cache(): only entries
    // whose cone of influence an op touched are evicted, the rest are
    // re-keyed and stay warm. Sessions are not quiesced at all (see
    // `Shared::session_epoch`).
    let stats = match wake {
        None => shared
            .engine
            .apply_delta(&current.spec.net, &model.spec.net, &applied.steps),
        Some(w) => {
            let pending =
                shared
                    .engine
                    .push_cache_delta(&current.spec.net, &model.spec.net, &applied.steps);
            w.wake_all();
            // Bounded wait: a shard wedged in a pathological solve
            // should delay the delta *response*, not wedge it forever.
            // The sweep itself still completes at that shard's next
            // catch-up point.
            shared
                .engine
                .await_cache_delta(&pending, Duration::from_secs(5))
        }
    };
    let generation = shared.generation.fetch_add(1, Ordering::SeqCst) + 1;
    rzen_obs::counter!("serve.deltas", "successful POST /delta applications").inc();
    let mut b = Body::new();
    b.str("status", "ok")
        .str("model", &format!("{:016x}", model.fingerprint))
        .num("generation", generation)
        .num("ops", applied.steps.len() as u64)
        .str("touched", &applied.touched.join(","))
        .num("devices", model.spec.net.devices.len() as u64)
        .num("evicted", stats.evicted as u64)
        .num("retained", stats.retained as u64);
    HttpAnswer::json(200, b.document())
}

/// Read and validate a POST body (spec text or NDJSON delta), answering
/// the 400 itself and returning `None` when the request is unusable.
fn read_post_body(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    content_length: usize,
) -> Option<String> {
    const MAX_BODY: usize = 16 << 20;
    let reject = |writer: &mut TcpStream, msg: &str| {
        let mut b = Body::new();
        b.str("error", msg);
        http_respond(writer, 400, "application/json", &b.document(), false);
    };
    if content_length == 0 || content_length > MAX_BODY {
        reject(writer, "body missing or oversized");
        return None;
    }
    let mut body = vec![0u8; content_length];
    if reader.read_exact(&mut body).is_err() {
        reject(writer, "truncated body");
        return None;
    }
    match String::from_utf8(body) {
        Ok(text) => Some(text),
        Err(_) => {
            reject(writer, "body is not utf-8");
            None
        }
    }
}

/// Answer 431 and close: the client exceeded the header byte budget.
fn header_cap_exceeded(writer: &mut TcpStream) {
    rzen_obs::counter!(
        "serve.header_cap_exceeded",
        "HTTP requests rejected for oversized headers (431)"
    )
    .inc();
    let mut b = Body::new();
    b.str("error", "request header fields too large");
    http_respond(writer, 431, "application/json", &b.document(), false);
    let _ = writer.flush();
    let _ = writer.shutdown(Shutdown::Both);
}

/// Longest `/debug/trace` / `/debug/profile` capture window a client can
/// request. Captures hold a serialized lock for the whole window; the
/// cap keeps one curl from parking every later capture for minutes.
const MAX_CAPTURE_MS: u64 = 10_000;

/// The value of one `key=value` pair in a query string.
fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query
        .split('&')
        .find_map(|kv| kv.strip_prefix(key).and_then(|rest| rest.strip_prefix('=')))
}

/// Parse the `ms` capture-window parameter: absent defaults to 200,
/// valid values clamp to [`MAX_CAPTURE_MS`], anything non-numeric or
/// negative is an error the caller answers with 400.
fn capture_window_ms(query: &str) -> Result<u64, &'static str> {
    match query_param(query, "ms") {
        None => Ok(200),
        Some(v) => v
            .parse::<u64>()
            .map(|ms| ms.min(MAX_CAPTURE_MS))
            .map_err(|_| "ms must be a non-negative integer"),
    }
}

/// On-demand bounded profile capture: reset the folded tables, run the
/// sampler for `window` at `hz`, and render the requested view. The
/// `cpu` view is a *wall-clock* span-stack profile — a thread is charged
/// for every tick its span stack is open, blocked or not (see the
/// `rzen_obs::profile` module docs) — so blocking spans like the debug
/// `sleep` op show their full wall time, not their CPU time. Like
/// [`capture_trace`], captures are serialized through a mutex so
/// concurrent `/debug/profile` requests cannot reset each other's
/// tables mid-window. If the profiler was already running (a
/// `--sample-hz` CLI run), the window merely harvests what accumulates
/// and leaves the sampler running.
fn capture_profile(window: Duration, hz: u32, heap: bool, svg: bool) -> String {
    static CAPTURE: Mutex<()> = Mutex::new(());
    let _one_at_a_time = CAPTURE.lock().unwrap();
    rzen_obs::profile::reset();
    let started_here = rzen_obs::profile::start(hz);
    thread::sleep(window);
    if started_here {
        rzen_obs::profile::stop();
    }
    match (heap, svg) {
        (false, false) => rzen_obs::profile::render_folded_cpu(),
        (true, false) => rzen_obs::profile::render_folded_heap(),
        (false, true) => {
            let folded = rzen_obs::profile::cpu_folded();
            let total: u64 = folded.iter().map(|(_, n)| n).sum();
            rzen_obs::flame::flamegraph_svg(
                &format!("CPU view · {total} wall-clock span samples"),
                "samples",
                &folded,
            )
        }
        (true, true) => {
            let folded: Vec<(String, u64)> = rzen_obs::profile::heap_folded()
                .into_iter()
                .map(|(stack, bytes, _)| (stack, bytes))
                .collect();
            let total: u64 = folded.iter().map(|(_, bytes)| bytes).sum();
            rzen_obs::flame::flamegraph_svg(
                &format!("Heap · {total} bytes allocated"),
                "bytes",
                &folded,
            )
        }
    }
}

/// On-demand bounded trace capture: enable tracing for `window`, then
/// return whatever spans landed as a Chrome trace JSON document.
///
/// Captures are serialized through a mutex — concurrent `/debug/trace`
/// requests would otherwise steal each other's events out of the
/// per-thread rings. If tracing was already on (`RZEN_TRACE=1`), it
/// stays on afterwards; the capture merely harvests the buffers.
fn capture_trace(window: Duration) -> String {
    static CAPTURE: Mutex<()> = Mutex::new(());
    let _one_at_a_time = CAPTURE.lock().unwrap();
    let was_enabled = rzen_obs::trace::enabled();
    // Discard whatever accumulated before the window so the capture
    // holds only spans that overlap it.
    rzen_obs::trace::clear();
    rzen_obs::trace::set_enabled(true);
    thread::sleep(window);
    let events = rzen_obs::trace::take_events();
    rzen_obs::trace::set_enabled(was_enabled);
    rzen_obs::export::chrome_trace(&events)
}

/// Render one full HTTP response. `head` sends the status line and
/// headers (with the Content-Length the body *would* have) but no body.
pub(crate) fn render_http(status: u16, content_type: &str, body: &str, head: bool) -> String {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "",
    };
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        if head { "" } else { body }
    )
}

/// Write one HTTP response to a blocking socket (threads mode).
fn http_respond(writer: &mut TcpStream, status: u16, content_type: &str, body: &str, head: bool) {
    let _ = writer.write_all(render_http(status, content_type, body, head).as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_window_defaults_clamps_and_rejects() {
        assert_eq!(capture_window_ms(""), Ok(200));
        assert_eq!(capture_window_ms("view=cpu"), Ok(200));
        assert_eq!(capture_window_ms("ms=0"), Ok(0));
        assert_eq!(capture_window_ms("ms=500&view=cpu"), Ok(500));
        assert_eq!(capture_window_ms("ms=10000"), Ok(MAX_CAPTURE_MS));
        assert_eq!(capture_window_ms("ms=3600000"), Ok(MAX_CAPTURE_MS));
        assert!(capture_window_ms("ms=abc").is_err());
        assert!(capture_window_ms("ms=-5").is_err());
        assert!(capture_window_ms("ms=1.5").is_err());
        assert!(capture_window_ms("ms=").is_err());
    }

    #[test]
    fn query_param_picks_exact_keys() {
        assert_eq!(query_param("ms=5&view=cpu", "view"), Some("cpu"));
        assert_eq!(query_param("ms=5&view=cpu", "ms"), Some("5"));
        assert_eq!(query_param("msx=5", "ms"), None);
        assert_eq!(query_param("", "ms"), None);
    }
}
