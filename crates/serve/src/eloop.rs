//! The epoll connection layer: one reactor thread multiplexing every
//! connection, shared-nothing engine shards behind SPSC rings.
//!
//! ## Shape
//!
//! The reactor owns the listener, every client socket, and the protocol
//! state machines ([`rzen_loop::framing`]): it accepts nonblocking,
//! sniffs NDJSON-vs-HTTP on the first bytes, parses incrementally across
//! partial reads, and keeps per-connection bounded write buffers that
//! re-arm `EPOLLOUT` until drained. No client can block it: reads and
//! writes never wait, slow consumers pause their connection's reads once
//! its write buffer passes a high-water mark, and blocking HTTP
//! endpoints (`/debug/trace`, `/debug/profile`, `POST /model`,
//! `POST /delta`) run on offload threads that report back through the
//! doorbell pipe.
//!
//! ## Shards
//!
//! Engine work runs on `N` shard threads. Each shard owns its solver
//! session ([`rzen_engine::ServeWorker`]) and its slice of the result
//! cache ([`rzen_engine::EngineShard`]) outright — the solve path takes
//! no cross-shard locks. The reactor routes queries by query
//! fingerprint (which subsumes the model fingerprint, so identical
//! queries against the same model always land on the shard holding
//! their cache entry and warm session state), hands jobs over an SPSC
//! ring, and collects completions from a second ring after the shard
//! rings the shared doorbell. Cache-wide transitions (hot-swap clear,
//! delta sweep) travel through the engine's cache log and are replayed
//! by each shard at its next catch-up point.
//!
//! ## Semantics parity
//!
//! Admission order matches the threads layer: coalesce-join first (a
//! joiner consumes no shard slot), then shed against the routed shard's
//! outstanding cap (`1 + ceil(backlog / shards)`), then admit with the
//! budget already ticking. Responses on a connection are written in
//! request order regardless of completion order. Drain answers new
//! requests `shutting_down`, waits for every admitted job and offload,
//! flushes what clients will take (with a bounded grace for those that
//! won't), then retires the shards.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io::{self, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use rzen::Budget;
use rzen_engine::{Engine, EngineConfig, EngineShard, Query, QueryResult, ServeWorker, Verdict};
use rzen_loop::framing::{HttpDecoder, HttpError, HttpRequest, LineDecoder, WriteBuf};
use rzen_loop::ring::{spsc, Consumer, Producer};
use rzen_loop::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use rzen_loop::Doorbell;
use rzen_obs::flight::{SmallStr, FLAG_CACHE_HIT, FLAG_COALESCED, FLAG_SESSION};
use rzen_obs::VerdictClass;

use crate::proto::{self, Op};
use crate::server::{
    answer_delta_post, answer_http_get, answer_model_post, do_hsa, do_paths, do_sleep,
    idle_reaped_counter, observe_latency, open_conns_gauge, render_http, HttpAnswer, Model,
    RespMeta, ServerConfig, ShardWake, Shared,
};
use crate::signal;

/// Token for the listening socket.
const TOK_LISTENER: u64 = u64::MAX;
/// Token for the doorbell's read end.
const TOK_DOORBELL: u64 = u64::MAX - 1;
/// Bytes per read() attempt.
const READ_CHUNK: usize = 16 << 10;
/// Write-buffer high-water mark: past this, the connection's reads pause
/// so a client that won't read responses can't balloon our memory.
const WBUF_PAUSE: usize = 256 << 10;
/// Reads resume once the write buffer drains below this.
const WBUF_RESUME: usize = 64 << 10;
/// How long the drain waits for clients to take their final responses
/// before force-closing the stragglers.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// Shared control surface the [`crate::server::ServerHandle`] holds onto.
pub(crate) struct EpollCtl {
    pub(crate) shared: Arc<Shared>,
    pub(crate) doorbell: Arc<Doorbell>,
    open_conns: AtomicUsize,
}

impl EpollCtl {
    pub(crate) fn open_conns(&self) -> usize {
        self.open_conns.load(Ordering::SeqCst)
    }
}

/// Start the epoll server. Returns the bound address, the control
/// surface, and the reactor thread handle.
pub(crate) fn start(
    cfg: ServerConfig,
    model: Model,
) -> io::Result<(SocketAddr, Arc<EpollCtl>, thread::JoinHandle<()>)> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    // Fail fast, before any thread exists: if the kernel won't give us
    // an epoll instance or a pipe there is nothing to fall back to here
    // (`server::start` already gated on `rzen_loop::SUPPORTED`).
    let epoll = Epoll::new()?;
    let doorbell = Arc::new(Doorbell::new()?);

    let shards = if cfg.shards == 0 {
        cfg.jobs.max(1)
    } else {
        cfg.shards.max(1)
    };
    let engine = Engine::new(EngineConfig {
        jobs: shards,
        backend: cfg.backend,
        timeout: cfg.timeout,
        cache: true,
        sessions: cfg.sessions,
    });
    engine.set_shard_count(shards);
    let ctl = Arc::new(EpollCtl {
        shared: Arc::new(Shared::new(cfg, model, engine)),
        doorbell,
        open_conns: AtomicUsize::new(0),
    });
    let reactor_ctl = ctl.clone();
    let reactor = thread::spawn(move || {
        let mut r = Reactor::new(reactor_ctl, epoll, shards);
        r.run(listener);
        r.shutdown_shards();
    });
    Ok((addr, ctl, reactor))
}

/// Everything the reactor needs to finish a request after the job left
/// the connection: identity, classification inputs, and the response
/// slot. `Copy` so the shard can hand it back even on the panic path.
#[derive(Clone, Copy)]
struct JobTicket {
    /// Connection token the response goes back to.
    token: u64,
    /// Response slot on the connection (responses flush in `seq` order).
    seq: u64,
    ctx: rzen_obs::RequestCtx,
    /// Admission time: flight latency includes ring wait, like the
    /// threads layer's queue wait.
    started: Instant,
    start_us: u64,
    /// Client correlation id.
    id: Option<u64>,
    op: &'static str,
    src: SmallStr,
    dst: SmallStr,
    /// Query fingerprint when this job leads a coalesce group.
    fp: Option<u64>,
}

/// One unit of work routed to a shard.
enum ShardJob {
    Query {
        t: JobTicket,
        query: Box<Query>,
        budget: Budget,
    },
    Hsa {
        t: JobTicket,
        src: (usize, u8),
        dst: (usize, u8),
        model: Arc<Model>,
    },
    Paths {
        t: JobTicket,
        src: (usize, u8),
        dst: (usize, u8),
        model: Arc<Model>,
    },
    Sleep {
        t: JobTicket,
        ms: u64,
    },
}

impl ShardJob {
    fn ticket(&self) -> &JobTicket {
        match self {
            ShardJob::Query { t, .. }
            | ShardJob::Hsa { t, .. }
            | ShardJob::Paths { t, .. }
            | ShardJob::Sleep { t, .. } => t,
        }
    }
}

/// A finished job coming back from a shard. The leader's response is
/// rendered shard-side; the raw result rides along when a coalesce
/// group may need to fan it out to waiters.
struct ShardDone {
    t: JobTicket,
    resp: String,
    meta: RespMeta,
    result: Option<Box<QueryResult>>,
}

/// Reactor-side view of one shard.
struct ShardSlot {
    jobs: Producer<ShardJob>,
    done: Consumer<ShardDone>,
    /// Jobs admitted to this shard and not yet collected back.
    outstanding: usize,
    handle: Option<thread::JoinHandle<()>>,
    waker: thread::Thread,
    depth: &'static rzen_obs::Gauge,
}

/// A completed offloaded HTTP endpoint, ready to write back.
struct HttpDone {
    token: u64,
    answer: HttpAnswer,
    head: bool,
}

/// In-flight identical queries: the leader runs, joiners wait on its
/// verdict. Lives reactor-local (single-threaded — no locks), keyed by
/// query fingerprint with a structural compare against collisions.
struct Group {
    query: Box<Query>,
    leader_req: u64,
    waiters: Vec<JobTicket>,
}

/// What stage of protocol detection/decoding a connection is in.
enum Proto {
    /// First bytes: not yet enough to tell HTTP from NDJSON.
    Sniff(Vec<u8>),
    Ndjson(LineDecoder),
    Http(HttpDecoder),
}

struct Conn {
    stream: TcpStream,
    token: u64,
    proto: Proto,
    wbuf: WriteBuf,
    /// Currently-registered epoll interest mask.
    interest: u32,
    /// Next response slot to allocate (one per request line).
    next_seq: u64,
    /// Next slot to move into the write buffer: responses leave in
    /// request order even when jobs complete out of order.
    flush_seq: u64,
    /// `seq -> Some(rendered response)` once ready, `None` while the job
    /// is still in flight.
    pending: HashMap<u64, Option<String>>,
    /// Jobs (and coalesce waits) in flight for this connection.
    outstanding: usize,
    last_activity: Instant,
    close_after_flush: bool,
    read_paused: bool,
    /// An offloaded HTTP endpoint is running; reads stay paused.
    http_busy: bool,
    /// Read side saw EOF; the connection closes once everything owed is
    /// written.
    peer_closed: bool,
}

impl Conn {
    fn new(stream: TcpStream, token: u64) -> Conn {
        Conn {
            stream,
            token,
            proto: Proto::Sniff(Vec::new()),
            wbuf: WriteBuf::new(),
            interest: EPOLLIN | EPOLLRDHUP,
            next_seq: 0,
            flush_seq: 0,
            pending: HashMap::new(),
            outstanding: 0,
            last_activity: Instant::now(),
            close_after_flush: false,
            read_paused: false,
            http_busy: false,
            peer_closed: false,
        }
    }
}

/// Has this connection nothing left to do?
fn conn_done(conn: &Conn) -> bool {
    (conn.close_after_flush && conn.wbuf.is_empty())
        || (conn.peer_closed
            && conn.outstanding == 0
            && conn.pending.is_empty()
            && conn.wbuf.is_empty())
}

/// Move ready responses (in `seq` order) into the write buffer and push
/// bytes at the socket. Returns false when the socket is dead.
fn flush_ready(conn: &mut Conn) -> bool {
    while matches!(conn.pending.get(&conn.flush_seq), Some(Some(_))) {
        let Some(Some(resp)) = conn.pending.remove(&conn.flush_seq) else {
            unreachable!("checked above")
        };
        conn.wbuf.queue(resp.as_bytes());
        conn.flush_seq += 1;
    }
    if conn.wbuf.len() > WBUF_PAUSE {
        conn.read_paused = true;
    }
    let alive = conn.wbuf.flush(&mut conn.stream).is_ok();
    if conn.read_paused && conn.wbuf.len() < WBUF_RESUME {
        conn.read_paused = false;
    }
    alive
}

/// Re-register the epoll interest mask when it changed: `EPOLLOUT` only
/// while the write buffer holds bytes, `EPOLLIN` only while we are
/// willing to read.
fn update_interest(epoll: &Epoll, conn: &mut Conn) {
    let mut want = EPOLLRDHUP;
    if !conn.read_paused && !conn.http_busy && !conn.close_after_flush {
        want |= EPOLLIN;
    }
    if !conn.wbuf.is_empty() {
        want |= EPOLLOUT;
    }
    if want != conn.interest
        && epoll
            .modify(conn.stream.as_raw_fd(), want, conn.token)
            .is_ok()
    {
        conn.interest = want;
    }
}

/// Metrics + flight record for one finished request; runs on every
/// path, connection-alive or not, exactly like the threads layer's
/// outer wrapper.
fn finalize(t: &JobTicket, meta: &RespMeta, leader: u64) {
    observe_latency(t.started);
    if meta.verdict.is_serve_error() {
        rzen_obs::metrics::registry()
            .counter_with(
                "serve.errors_total",
                "failed serve responses by failure kind",
                &[("kind", meta.verdict.as_str())],
            )
            .inc();
    }
    rzen_obs::flight::record(rzen_obs::RequestRecord {
        id: t.ctx.id,
        start_us: t.start_us,
        latency_us: t.started.elapsed().as_micros() as u64,
        model: t.ctx.model,
        generation: t.ctx.generation,
        leader,
        op: SmallStr::new(t.op),
        src: t.src,
        dst: t.dst,
        verdict: meta.verdict,
        backend: meta.backend,
        flags: meta.flags,
        alloc_bytes: meta.alloc_bytes,
        alloc_count: meta.alloc_count,
        shard: t.ctx.shard,
    });
}

struct Reactor {
    ctl: Arc<EpollCtl>,
    epoll: Epoll,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    shards: Vec<ShardSlot>,
    shard_wake: ShardWake,
    per_shard_cap: usize,
    /// Round-robin cursor for work with no fingerprint affinity.
    rr: usize,
    coalesce: HashMap<u64, Group>,
    /// Joiner deadlines: `(deadline, query fp, waiter request id)`.
    timers: BinaryHeap<Reverse<(Instant, u64, u64)>>,
    http_done: Arc<Mutex<Vec<HttpDone>>>,
    /// Offload threads still running; the drain waits for them.
    offloads: Arc<AtomicUsize>,
    stop_shards: Arc<AtomicBool>,
    wakeups: &'static rzen_obs::Counter,
    draining: bool,
    drain_started: Option<Instant>,
    last_idle_scan: Instant,
}

impl Reactor {
    fn new(ctl: Arc<EpollCtl>, epoll: Epoll, shard_count: usize) -> Reactor {
        let backlog = ctl.shared.cfg.backlog;
        // Same total capacity discipline as the threads layer (`jobs`
        // executors + `backlog` queued), divided per shard. `jobs=1,
        // backlog=0` still admits one job per shard, so the threads
        // layer's shed tests hold verbatim.
        let per_shard_cap = 1 + backlog.div_ceil(shard_count);
        let stop_shards = Arc::new(AtomicBool::new(false));
        let mut shards = Vec::with_capacity(shard_count);
        for sid in 0..shard_count {
            let (jobs_tx, jobs_rx) = spsc::<ShardJob>(per_shard_cap);
            let (done_tx, done_rx) = spsc::<ShardDone>(per_shard_cap);
            let shared = ctl.shared.clone();
            let bell = ctl.doorbell.clone();
            let stop = stop_shards.clone();
            let handle =
                thread::spawn(move || shard_loop(shared, sid, jobs_rx, done_tx, bell, stop));
            let waker = handle.thread().clone();
            shards.push(ShardSlot {
                jobs: jobs_tx,
                done: done_rx,
                outstanding: 0,
                handle: Some(handle),
                waker,
                depth: rzen_obs::metrics::registry().gauge_with(
                    "serve.shard_queue_depth",
                    "jobs queued or running per engine shard",
                    &[("shard", &sid.to_string())],
                ),
            });
        }
        let shard_wake = ShardWake {
            threads: shards.iter().map(|s| s.waker.clone()).collect(),
        };
        Reactor {
            ctl,
            epoll,
            conns: HashMap::new(),
            next_token: 0,
            shards,
            shard_wake,
            per_shard_cap,
            rr: 0,
            coalesce: HashMap::new(),
            timers: BinaryHeap::new(),
            http_done: Arc::new(Mutex::new(Vec::new())),
            offloads: Arc::new(AtomicUsize::new(0)),
            stop_shards,
            wakeups: rzen_obs::counter!("loop.wakeups", "reactor epoll_wait returns"),
            draining: false,
            drain_started: None,
            last_idle_scan: Instant::now(),
        }
    }

    fn run(&mut self, listener: TcpListener) {
        let _span = rzen_obs::span!("serve.reactor");
        if self
            .epoll
            .add(listener.as_raw_fd(), EPOLLIN, TOK_LISTENER)
            .is_err()
            || self
                .epoll
                .add(self.ctl.doorbell.read_fd(), EPOLLIN, TOK_DOORBELL)
                .is_err()
        {
            return;
        }
        let mut events = vec![EpollEvent::default(); 256];
        loop {
            let timeout = self.wait_timeout_ms();
            let nev = self.epoll.wait(&mut events, timeout).unwrap_or(0);
            self.wakeups.inc();
            {
                let shared = &self.ctl.shared;
                if !self.draining
                    && (shared.shutdown.load(Ordering::SeqCst)
                        || (shared.cfg.handle_signals && signal::triggered()))
                {
                    self.draining = true;
                    shared.draining.store(true, Ordering::SeqCst);
                    self.drain_started = Some(Instant::now());
                    let _ = self.epoll.delete(listener.as_raw_fd());
                }
            }
            for ev in events.iter().take(nev) {
                let (mask, token) = (ev.mask(), ev.token());
                match token {
                    TOK_LISTENER => {
                        if !self.draining {
                            self.accept_ready(&listener);
                        }
                    }
                    TOK_DOORBELL => self.ctl.doorbell.drain(),
                    token => self.handle_conn_event(token, mask),
                }
            }
            self.drain_completions();
            self.drain_http_done();
            self.fire_timers(Instant::now());
            self.reap_idle(Instant::now());
            if self.draining && self.drain_complete() {
                break;
            }
        }
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.remove(&token) {
                self.close_conn(conn);
            }
        }
    }

    /// Stop and join the shard threads. Runs after the event loop exits,
    /// when no producer can route another job.
    fn shutdown_shards(&mut self) {
        self.stop_shards.store(true, Ordering::SeqCst);
        for s in &self.shards {
            s.waker.unpark();
        }
        for s in &mut self.shards {
            if let Some(h) = s.handle.take() {
                let _ = h.join();
            }
        }
    }

    fn wait_timeout_ms(&self) -> i32 {
        let mut ms: u64 = if self.draining { 2 } else { 100 };
        if let Some(Reverse((deadline, _, _))) = self.timers.peek() {
            let until = deadline
                .saturating_duration_since(Instant::now())
                .as_millis() as u64;
            ms = ms.min(until.max(1));
        }
        if self.ctl.shared.cfg.idle_timeout.is_some() {
            ms = ms.min(250);
        }
        ms as i32
    }

    fn accept_ready(&mut self, listener: &TcpListener) {
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    rzen_obs::counter!("serve.connections", "TCP connections accepted").inc();
                    let _ = stream.set_nonblocking(true);
                    // Request/response lines are tiny; Nagle + delayed
                    // ACK would add ~40ms to every exchange.
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .epoll
                        .add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token)
                        .is_err()
                    {
                        continue;
                    }
                    open_conns_gauge().add(1);
                    self.ctl.open_conns.fetch_add(1, Ordering::SeqCst);
                    self.conns.insert(token, Conn::new(stream, token));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    // EMFILE, ECONNABORTED, ...: transient for a
                    // listener; the loop simply tries again next wake.
                    rzen_obs::counter!("serve.accept_errors", "transient accept() failures").inc();
                    break;
                }
            }
        }
    }

    fn handle_conn_event(&mut self, token: u64, mask: u32) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        let alive = self.drive_conn(&mut conn, mask) && !conn_done(&conn);
        if alive {
            update_interest(&self.epoll, &mut conn);
            self.conns.insert(token, conn);
        } else {
            self.close_conn(conn);
        }
    }

    /// React to readiness on one connection. Returns false when the
    /// connection is dead.
    fn drive_conn(&mut self, conn: &mut Conn, mask: u32) -> bool {
        if mask & (EPOLLERR | EPOLLHUP) != 0 {
            return false;
        }
        if mask & EPOLLOUT != 0 {
            if conn.wbuf.flush(&mut conn.stream).is_err() {
                return false;
            }
            if conn.read_paused && conn.wbuf.len() < WBUF_RESUME {
                conn.read_paused = false;
            }
        }
        if mask & (EPOLLIN | EPOLLRDHUP) != 0 {
            let mut buf = [0u8; READ_CHUNK];
            loop {
                if conn.read_paused || conn.http_busy || conn.close_after_flush {
                    break;
                }
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conn.peer_closed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.last_activity = Instant::now();
                        if !self.ingest(conn, &buf[..n]) {
                            return false;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return false,
                }
            }
        }
        true
    }

    /// Feed freshly-read bytes through the connection's protocol state
    /// machine. Returns false when the connection must close now.
    fn ingest(&mut self, conn: &mut Conn, data: &[u8]) -> bool {
        if let Proto::Sniff(acc) = &mut conn.proto {
            acc.extend_from_slice(data);
            // "GET ", "POST " and "HEAD " need at most 5 bytes to
            // recognize; a newline earlier than that can only be NDJSON.
            if acc.len() < 5 && !acc.contains(&b'\n') {
                return true;
            }
            let seed = std::mem::take(acc);
            conn.proto = if seed.starts_with(b"GET ")
                || seed.starts_with(b"POST ")
                || seed.starts_with(b"HEAD ")
            {
                Proto::Http(HttpDecoder::new(&seed))
            } else {
                let mut d = LineDecoder::new();
                d.feed(&seed);
                Proto::Ndjson(d)
            };
        } else {
            match &mut conn.proto {
                Proto::Ndjson(d) => d.feed(data),
                Proto::Http(d) => d.feed(data),
                Proto::Sniff(_) => unreachable!("handled above"),
            }
        }
        match &conn.proto {
            Proto::Ndjson(_) => self.pump_ndjson(conn),
            Proto::Http(_) => self.pump_http(conn),
            Proto::Sniff(_) => true,
        }
    }

    fn pump_ndjson(&mut self, conn: &mut Conn) -> bool {
        loop {
            let next = match &mut conn.proto {
                Proto::Ndjson(d) => d.next_line(),
                _ => return true,
            };
            match next {
                Ok(Some(line)) => self.admit_line(conn, &line),
                Ok(None) => break,
                Err(_) => {
                    // The decoder is poisoned past its 1 MiB line cap;
                    // answer once and close.
                    rzen_obs::counter!("serve.bad_requests", "malformed request lines").inc();
                    conn.wbuf
                        .queue(proto::error_response(None, 0, "request line too long").as_bytes());
                    conn.close_after_flush = true;
                    break;
                }
            }
        }
        flush_ready(conn)
    }

    fn pump_http(&mut self, conn: &mut Conn) -> bool {
        // One request per connection (`Connection: close`), same as the
        // threads layer's shim.
        if conn.http_busy || conn.close_after_flush {
            return true;
        }
        let polled = match &mut conn.proto {
            Proto::Http(d) => d.poll(),
            _ => return true,
        };
        match polled {
            Ok(None) => true,
            Ok(Some(req)) => {
                self.handle_http_request(conn, req);
                flush_ready(conn)
            }
            Err(HttpError::HeadersTooLarge) => {
                rzen_obs::counter!(
                    "serve.header_cap_exceeded",
                    "HTTP requests rejected for oversized headers (431)"
                )
                .inc();
                self.http_finish(
                    conn,
                    &HttpAnswer::error(431, "request header fields too large"),
                    false,
                );
                flush_ready(conn)
            }
            Err(HttpError::BodyTooLarge) => {
                self.http_finish(
                    conn,
                    &HttpAnswer::error(400, "body missing or oversized"),
                    false,
                );
                flush_ready(conn)
            }
        }
    }

    /// Queue an HTTP response and mark the connection to close once it
    /// is flushed.
    fn http_finish(&mut self, conn: &mut Conn, answer: &HttpAnswer, head: bool) {
        conn.wbuf
            .queue(render_http(answer.status, answer.content_type, &answer.body, head).as_bytes());
        conn.close_after_flush = true;
    }

    fn handle_http_request(&mut self, conn: &mut Conn, req: HttpRequest) {
        let _span = rzen_obs::span!("serve.http");
        let mut parts = req.request_line.split_whitespace();
        let method = parts.next().unwrap_or("").to_string();
        let target = parts.next().unwrap_or("");
        let (path, query) = target.split_once('?').unwrap_or((target, ""));
        let (path, query) = (path.to_string(), query.to_string());
        let head = method == "HEAD";
        match (method.as_str(), path.as_str()) {
            ("POST", "/model") | ("POST", "/delta") => {
                // Same body validation as the blocking shim's
                // `read_post_body` (the decoder already rejected bodies
                // past the 16 MiB cap).
                if req.content_length.unwrap_or(0) == 0 {
                    self.http_finish(
                        conn,
                        &HttpAnswer::error(400, "body missing or oversized"),
                        head,
                    );
                    return;
                }
                let Ok(text) = String::from_utf8(req.body) else {
                    self.http_finish(conn, &HttpAnswer::error(400, "body is not utf-8"), head);
                    return;
                };
                let is_model = path == "/model";
                let shared = self.ctl.shared.clone();
                let wake = self.shard_wake.clone();
                self.offload(conn, head, move || {
                    if is_model {
                        answer_model_post(&shared, &text, Some(&wake))
                    } else {
                        answer_delta_post(&shared, &text, Some(&wake))
                    }
                });
            }
            ("GET" | "HEAD", "/debug/trace" | "/debug/profile") => {
                // These block for their whole capture window — never on
                // the reactor thread.
                let shared = self.ctl.shared.clone();
                self.offload(conn, head, move || {
                    answer_http_get(&method, &path, &query, &shared)
                });
            }
            _ => {
                let answer = answer_http_get(&method, &path, &query, &self.ctl.shared);
                self.http_finish(conn, &answer, head);
            }
        }
    }

    /// Run a blocking HTTP endpoint on its own thread; the result comes
    /// back through `http_done` + the doorbell. The connection's reads
    /// stay paused meanwhile.
    fn offload(
        &mut self,
        conn: &mut Conn,
        head: bool,
        f: impl FnOnce() -> HttpAnswer + Send + 'static,
    ) {
        conn.http_busy = true;
        let token = conn.token;
        let sink = self.http_done.clone();
        let offloads = self.offloads.clone();
        let bell = self.ctl.doorbell.clone();
        offloads.fetch_add(1, Ordering::SeqCst);
        thread::spawn(move || {
            let answer = catch_unwind(AssertUnwindSafe(f))
                .unwrap_or_else(|_| HttpAnswer::error(500, "internal: endpoint panicked"));
            sink.lock().unwrap().push(HttpDone {
                token,
                answer,
                head,
            });
            offloads.fetch_sub(1, Ordering::SeqCst);
            bell.ring();
        });
    }

    fn drain_http_done(&mut self) {
        let done: Vec<HttpDone> = std::mem::take(&mut *self.http_done.lock().unwrap());
        for d in done {
            let Some(mut conn) = self.conns.remove(&d.token) else {
                continue;
            };
            conn.http_busy = false;
            conn.last_activity = Instant::now();
            self.http_finish(&mut conn, &d.answer, d.head);
            let alive = flush_ready(&mut conn) && !conn_done(&conn);
            if alive {
                update_interest(&self.epoll, &mut conn);
                self.conns.insert(d.token, conn);
            } else {
                self.close_conn(conn);
            }
        }
    }

    /// Admit one NDJSON request line: the reactor-side mirror of the
    /// threads layer's `handle_request` + `handle_request_inner`, except
    /// nothing here ever blocks — in-flight work parks in `pending[seq]`
    /// and the answer arrives through the shard's done ring.
    fn admit_line(&mut self, conn: &mut Conn, line: &str) {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return;
        }
        let started = Instant::now();
        let start_us = rzen_obs::flight::now_us();
        rzen_obs::counter!("serve.requests", "query requests received").inc();
        let shared = self.ctl.shared.clone();
        // Model pointer captured before admission: a hot swap between
        // admission and execution must not change what this request
        // computes against.
        let model = shared.model.read().unwrap().clone();
        let ctx =
            rzen_obs::RequestCtx::mint(model.fingerprint, shared.generation.load(Ordering::SeqCst));
        let _span = rzen_obs::span!("serve.request", "req" => ctx.id);
        let seq = conn.next_seq;
        conn.next_seq += 1;
        let mut t = JobTicket {
            token: conn.token,
            seq,
            ctx,
            started,
            start_us,
            id: None,
            op: "",
            src: SmallStr::default(),
            dst: SmallStr::default(),
            fp: None,
        };

        let req = match proto::parse_request(trimmed, shared.cfg.debug_ops) {
            Ok(r) => r,
            Err(e) => {
                rzen_obs::counter!("serve.bad_requests", "malformed request lines").inc();
                let meta = RespMeta {
                    verdict: VerdictClass::BadRequest,
                    ..RespMeta::default()
                };
                let resp = proto::error_response(None, ctx.id, &e);
                self.finish_local(conn, &t, meta, resp);
                return;
            }
        };
        t.id = req.id;
        t.op = req.op.name();
        match &req.op {
            Op::Reach { src, dst }
            | Op::Drops { src, dst }
            | Op::Hsa { src, dst }
            | Op::Paths { src, dst } => {
                t.src = SmallStr::new(src);
                t.dst = SmallStr::new(dst);
            }
            Op::Sleep { .. } => {}
        }
        if shared.draining.load(Ordering::SeqCst) || shared.shutdown.load(Ordering::SeqCst) {
            let meta = RespMeta {
                verdict: VerdictClass::ShuttingDown,
                ..RespMeta::default()
            };
            let resp = proto::error_response(req.id, ctx.id, "shutting_down");
            self.finish_local(conn, &t, meta, resp);
            return;
        }
        // The budget starts at admission so ring wait consumes the
        // deadline, exactly like queue wait in the threads layer.
        let budget = match req
            .timeout_ms
            .map(Duration::from_millis)
            .or(shared.cfg.timeout)
        {
            Some(timeout) => Budget::with_timeout(timeout),
            None => Budget::unlimited(),
        };

        let resolve = |s: &str| model.spec.endpoint(s);
        match &req.op {
            Op::Reach { src, dst } | Op::Drops { src, dst } => {
                let (src, dst) = match (resolve(src), resolve(dst)) {
                    (Ok(s), Ok(d)) => (s, d),
                    (Err(e), _) | (_, Err(e)) => {
                        let meta = RespMeta {
                            verdict: VerdictClass::ResolveFailed,
                            ..RespMeta::default()
                        };
                        let resp = proto::error_response(req.id, ctx.id, &e);
                        self.finish_local(conn, &t, meta, resp);
                        return;
                    }
                };
                let query = if matches!(req.op, Op::Reach { .. }) {
                    Query::Reach {
                        net: model.spec.net.clone(),
                        src,
                        dst,
                    }
                } else {
                    Query::Drops {
                        net: model.spec.net.clone(),
                        src,
                        dst,
                    }
                };
                let fp = query.fingerprint();
                // Coalesce before the shed check: a joiner consumes no
                // shard slot at all.
                if let Some(group) = self.coalesce.get_mut(&fp) {
                    if *group.query == query {
                        rzen_obs::counter!(
                            "serve.coalesced",
                            "requests answered by joining an identical in-flight query"
                        )
                        .inc();
                        conn.pending.insert(seq, None);
                        conn.outstanding += 1;
                        group.waiters.push(t);
                        // The wait is bounded by *this* request's
                        // deadline: a short-budget joiner riding a
                        // long-budget leader degrades to its own
                        // `timeout`.
                        if let Some(deadline) = budget.deadline() {
                            self.timers.push(Reverse((deadline, fp, ctx.id)));
                        }
                        return;
                    }
                    // Fingerprint collision against a structurally
                    // different query: run it alone, uncoalesced.
                    self.route_job(conn, t, |t| ShardJob::Query {
                        t,
                        query: Box::new(query),
                        budget,
                    });
                    return;
                }
                t.fp = Some(fp);
                let lead = Box::new(query.clone());
                let leader_req = ctx.id;
                let admitted = self.route_job(conn, t, |t| ShardJob::Query {
                    t,
                    query: Box::new(query),
                    budget,
                });
                if admitted {
                    self.coalesce.insert(
                        fp,
                        Group {
                            query: lead,
                            leader_req,
                            waiters: Vec::new(),
                        },
                    );
                }
            }
            Op::Hsa { src, dst } => {
                let (src, dst) = match (resolve(src), resolve(dst)) {
                    (Ok(s), Ok(d)) => (s, d),
                    (Err(e), _) | (_, Err(e)) => {
                        let meta = RespMeta {
                            verdict: VerdictClass::ResolveFailed,
                            ..RespMeta::default()
                        };
                        let resp = proto::error_response(req.id, ctx.id, &e);
                        self.finish_local(conn, &t, meta, resp);
                        return;
                    }
                };
                let model = model.clone();
                self.route_job(conn, t, |t| ShardJob::Hsa { t, src, dst, model });
            }
            Op::Paths { src, dst } => {
                let (src, dst) = match (resolve(src), resolve(dst)) {
                    (Ok(s), Ok(d)) => (s, d),
                    (Err(e), _) | (_, Err(e)) => {
                        let meta = RespMeta {
                            verdict: VerdictClass::ResolveFailed,
                            ..RespMeta::default()
                        };
                        let resp = proto::error_response(req.id, ctx.id, &e);
                        self.finish_local(conn, &t, meta, resp);
                        return;
                    }
                };
                let model = model.clone();
                self.route_job(conn, t, |t| ShardJob::Paths { t, src, dst, model });
            }
            Op::Sleep { ms } => {
                let ms = *ms;
                self.route_job(conn, t, |t| ShardJob::Sleep { t, ms });
            }
        }
    }

    /// Route a job to a shard and admit it, or shed with `overloaded`.
    /// Queries with a fingerprint get fingerprint affinity (stable shard
    /// per query/model, so repeats hit that shard's cache); everything
    /// else round-robins. Returns whether the job was admitted.
    fn route_job(
        &mut self,
        conn: &mut Conn,
        mut t: JobTicket,
        build: impl FnOnce(JobTicket) -> ShardJob,
    ) -> bool {
        let sid = match t.fp {
            Some(fp) => (fp.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.shards.len(),
            None => {
                self.rr = (self.rr + 1) % self.shards.len();
                self.rr
            }
        };
        if self.shards[sid].outstanding >= self.per_shard_cap {
            rzen_obs::counter!(
                "serve.overloaded",
                "requests shed by the full admission queue"
            )
            .inc();
            let meta = RespMeta {
                verdict: VerdictClass::Overloaded,
                ..RespMeta::default()
            };
            let resp = proto::error_response(t.id, t.ctx.id, "overloaded");
            self.finish_local(conn, &t, meta, resp);
            return false;
        }
        t.ctx.shard = (sid + 1) as u16;
        conn.pending.insert(t.seq, None);
        conn.outstanding += 1;
        // Reserve the in-flight count before the push so the drain never
        // observes zero while a job sits in a ring.
        self.ctl.shared.admitted.fetch_add(1, Ordering::SeqCst);
        let slot = &mut self.shards[sid];
        slot.outstanding += 1;
        slot.depth.set(slot.outstanding as i64);
        if slot.jobs.push(build(t)).is_err() {
            // Unreachable: outstanding < cap == ring capacity. Kept as a
            // real shed rather than a panic in case the invariant moves.
            slot.outstanding -= 1;
            slot.depth.set(slot.outstanding as i64);
            self.ctl.shared.admitted.fetch_sub(1, Ordering::SeqCst);
            conn.pending.remove(&t.seq);
            conn.outstanding -= 1;
            rzen_obs::counter!(
                "serve.overloaded",
                "requests shed by the full admission queue"
            )
            .inc();
            let meta = RespMeta {
                verdict: VerdictClass::Overloaded,
                ..RespMeta::default()
            };
            let resp = proto::error_response(t.id, t.ctx.id, "overloaded");
            self.finish_local(conn, &t, meta, resp);
            return false;
        }
        slot.waker.unpark();
        true
    }

    /// Answer a request synchronously (errors, shedding, drain refusals):
    /// finalize its record and park the response in its ordered slot.
    fn finish_local(&mut self, conn: &mut Conn, t: &JobTicket, meta: RespMeta, resp: String) {
        finalize(t, &meta, 0);
        conn.pending.insert(t.seq, Some(resp));
    }

    /// Collect finished jobs from every shard's done ring.
    fn drain_completions(&mut self) {
        for sid in 0..self.shards.len() {
            while let Some(done) = self.shards[sid].done.pop() {
                let slot = &mut self.shards[sid];
                slot.outstanding -= 1;
                slot.depth.set(slot.outstanding as i64);
                self.ctl.shared.admitted.fetch_sub(1, Ordering::SeqCst);
                self.complete(done);
            }
        }
    }

    /// Deliver a leader's response and fan its verdict out to any
    /// coalesced waiters.
    fn complete(&mut self, done: ShardDone) {
        finalize(&done.t, &done.meta, 0);
        let group = done.t.fp.and_then(|fp| self.coalesce.remove(&fp));
        self.deliver(done.t.token, done.t.seq, done.resp);
        let Some(group) = group else {
            return;
        };
        for w in group.waiters {
            let (resp, meta) = match &done.result {
                Some(result) => {
                    let mut flags = FLAG_COALESCED;
                    if result.cache_hit {
                        flags |= FLAG_CACHE_HIT;
                    }
                    (
                        proto::verdict_response(w.id, w.ctx.id, w.op, result, true),
                        RespMeta {
                            verdict: result.verdict.class(),
                            backend: result.backend_class(),
                            flags,
                            ..RespMeta::default()
                        },
                    )
                }
                // The leader panicked without a verdict; waiters get the
                // same release a dropped LeadGuard gives them.
                None => (
                    proto::error_response(w.id, w.ctx.id, "overloaded"),
                    RespMeta {
                        verdict: VerdictClass::Overloaded,
                        flags: FLAG_COALESCED,
                        ..RespMeta::default()
                    },
                ),
            };
            finalize(&w, &meta, group.leader_req);
            self.deliver(w.token, w.seq, resp);
        }
    }

    /// Hand a finished response to its connection's ordered slot. A gone
    /// connection is not an error — the record was already finalized.
    fn deliver(&mut self, token: u64, seq: u64, resp: String) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        conn.outstanding = conn.outstanding.saturating_sub(1);
        conn.last_activity = Instant::now();
        conn.pending.insert(seq, Some(resp));
        let alive = flush_ready(&mut conn) && !conn_done(&conn);
        if alive {
            update_interest(&self.epoll, &mut conn);
            self.conns.insert(token, conn);
        } else {
            self.close_conn(conn);
        }
    }

    /// Time out coalesce joiners whose own deadline passed before their
    /// leader published.
    fn fire_timers(&mut self, now: Instant) {
        while let Some(&Reverse((deadline, fp, wid))) = self.timers.peek() {
            if deadline > now {
                break;
            }
            self.timers.pop();
            let Some(group) = self.coalesce.get_mut(&fp) else {
                continue;
            };
            let Some(pos) = group.waiters.iter().position(|w| w.ctx.id == wid) else {
                continue;
            };
            let w = group.waiters.swap_remove(pos);
            let leader_req = group.leader_req;
            rzen_obs::counter!(
                "serve.join_timeouts",
                "joiners whose own deadline passed before the leader published"
            )
            .inc();
            let timed_out = QueryResult {
                index: 0,
                kind: w.op,
                verdict: Verdict::Timeout,
                latency: w.started.elapsed(),
                winner: None,
                cache_hit: false,
                sat_stats: None,
                bdd_stats: None,
                session: None,
            };
            let resp = proto::verdict_response(w.id, w.ctx.id, w.op, &timed_out, true);
            let meta = RespMeta {
                verdict: VerdictClass::Timeout,
                flags: FLAG_COALESCED,
                ..RespMeta::default()
            };
            finalize(&w, &meta, leader_req);
            self.deliver(w.token, w.seq, resp);
        }
    }

    /// Close connections silent past `--idle-timeout-ms`. Anything with
    /// work in flight or bytes owed is never reaped.
    fn reap_idle(&mut self, now: Instant) {
        let Some(idle) = self.ctl.shared.cfg.idle_timeout else {
            return;
        };
        if now.duration_since(self.last_idle_scan) < Duration::from_millis(100) {
            return;
        }
        self.last_idle_scan = now;
        let stale: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                c.outstanding == 0
                    && !c.http_busy
                    && c.wbuf.is_empty()
                    && c.pending.is_empty()
                    && now.duration_since(c.last_activity) >= idle
            })
            .map(|(t, _)| *t)
            .collect();
        for token in stale {
            if let Some(conn) = self.conns.remove(&token) {
                idle_reaped_counter().inc();
                self.close_conn(conn);
            }
        }
    }

    /// The drain is complete when every admitted job and offload is
    /// answered and every client took its bytes (bounded by the grace
    /// window for clients that won't read).
    fn drain_complete(&self) -> bool {
        if self.ctl.shared.admitted.load(Ordering::SeqCst) > 0
            || self.offloads.load(Ordering::SeqCst) > 0
        {
            return false;
        }
        let flushed = self
            .conns
            .values()
            .all(|c| c.wbuf.is_empty() && c.pending.is_empty());
        flushed
            || self
                .drain_started
                .map(|t| t.elapsed() > DRAIN_GRACE)
                .unwrap_or(false)
    }

    fn close_conn(&mut self, conn: Conn) {
        let _ = self.epoll.delete(conn.stream.as_raw_fd());
        let _ = conn.stream.shutdown(Shutdown::Both);
        open_conns_gauge().add(-1);
        self.ctl.open_conns.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One shard: owns a warm solver session and its slice of the result
/// cache; pulls jobs from its SPSC ring, pushes completions back, and
/// rings the doorbell. Parks when idle; the reactor (or a model
/// mutation) unparks it.
fn shard_loop(
    shared: Arc<Shared>,
    sid: usize,
    jobs: Consumer<ShardJob>,
    done: Producer<ShardDone>,
    bell: Arc<Doorbell>,
    stop: Arc<AtomicBool>,
) {
    let _span = rzen_obs::span!("serve.shard", "shard" => sid as u64);
    let mut eshard = shared.engine.shard(sid);
    let mut epoch = shared.session_epoch.load(Ordering::SeqCst);
    let mut solver = shared.engine.serve_worker();
    loop {
        // Replay pending cache-wide ops even when idle so a hot-swap or
        // delta sweep doesn't wait for the next query to this shard.
        shared.engine.shard_catch_up(&mut eshard);
        let Some(job) = jobs.pop() else {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            thread::park_timeout(Duration::from_millis(10));
            continue;
        };
        // A full model swap quiesces this shard's sessions, exactly like
        // a threads-layer worker. Deltas never bump the epoch.
        let now = shared.session_epoch.load(Ordering::SeqCst);
        if now != epoch {
            epoch = now;
            solver = shared.engine.serve_worker();
            rzen_obs::counter!(
                "serve.session_rebuilds",
                "worker sessions quiesced and rebuilt by full model swaps"
            )
            .inc();
        }
        let t = *job.ticket();
        let _jspan = rzen_obs::span!("serve.job", "req" => t.ctx.id);
        let (alloc_bytes0, alloc_count0) = rzen_obs::profile::thread_alloc_stats();
        let mut out = catch_unwind(AssertUnwindSafe(|| {
            execute_job(&shared, &mut eshard, &solver, job)
        }))
        .unwrap_or_else(|_| {
            // The panic may have left the thread-local arena half-built;
            // reset it so the next job on this shard starts clean.
            rzen::reset_ctx();
            rzen_obs::counter!("serve.job_panics", "jobs that panicked during execution").inc();
            ShardDone {
                t,
                resp: proto::error_response(t.id, t.ctx.id, "internal: analysis panicked"),
                meta: RespMeta {
                    verdict: VerdictClass::Error,
                    ..RespMeta::default()
                },
                result: None,
            }
        });
        let (alloc_bytes1, alloc_count1) = rzen_obs::profile::thread_alloc_stats();
        out.meta.alloc_bytes = alloc_bytes1.saturating_sub(alloc_bytes0);
        out.meta.alloc_count = alloc_count1.saturating_sub(alloc_count0);
        let mut item = out;
        // The done ring is sized to the jobs ring, so this cannot spin in
        // practice; the retry is a belt against the invariant moving.
        while let Err(back) = done.push(item) {
            item = back;
            thread::yield_now();
        }
        bell.ring();
    }
}

fn execute_job(
    shared: &Shared,
    eshard: &mut EngineShard,
    solver: &ServeWorker,
    job: ShardJob,
) -> ShardDone {
    let started = Instant::now();
    match job {
        ShardJob::Query { t, query, budget } => {
            // An exhausted budget (the request aged out in the ring)
            // still runs: the solvers observe it at their first poll and
            // the request degrades to `timeout` — while a cache hit can
            // still answer it for free.
            let result = shared
                .engine
                .run_one_sharded(eshard, &query, budget, solver, t.ctx);
            let resp = proto::verdict_response(t.id, t.ctx.id, t.op, &result, false);
            let mut flags = 0u8;
            if result.cache_hit {
                flags |= FLAG_CACHE_HIT;
            }
            if result.session.is_some() {
                flags |= FLAG_SESSION;
            }
            let meta = RespMeta {
                verdict: result.verdict.class(),
                backend: result.backend_class(),
                flags,
                ..RespMeta::default()
            };
            // Only a coalesce leader's verdict is needed back in full.
            let result = t.fp.map(|_| Box::new(result));
            ShardDone {
                t,
                resp,
                meta,
                result,
            }
        }
        ShardJob::Hsa { t, src, dst, model } => {
            let (resp, meta) = do_hsa(t.id, t.ctx.id, src, dst, &model, started);
            ShardDone {
                t,
                resp,
                meta,
                result: None,
            }
        }
        ShardJob::Paths { t, src, dst, model } => {
            let (resp, meta) = do_paths(t.id, t.ctx.id, src, dst, &model, started);
            ShardDone {
                t,
                resp,
                meta,
                result: None,
            }
        }
        ShardJob::Sleep { t, ms } => {
            let (resp, meta) = do_sleep(t.id, t.ctx.id, ms, started);
            ShardDone {
                t,
                resp,
                meta,
                result: None,
            }
        }
    }
}
