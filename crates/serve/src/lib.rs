//! # rzen-serve — the network-verification query server
//!
//! Loads a network spec once, keeps warm solver state per worker, and
//! answers `reach` / `drops` / `hsa` / `paths` queries over
//! newline-delimited JSON on a plain TCP socket, with a minimal HTTP/1.1
//! shim on the same port for `GET /healthz`, `GET /metrics`
//! (the [`rzen_obs`] registry in text form), and `POST /model`
//! (atomic spec hot-swap).
//!
//! Like [`rzen_obs`], the crate is std-only — no async runtime, no HTTP
//! framework. Two connection layers share one protocol surface
//! ([`LoopMode`]): the original thread-per-connection layer over
//! blocking sockets, and an epoll reactor (`rzen-loop`) that multiplexes
//! every connection on one thread and routes admitted work to
//! shared-nothing engine shards over SPSC rings.
//!
//! The serving disciplines — bounded admission with explicit shedding,
//! in-flight coalescing, deadlines that include queue wait, atomic model
//! swap, graceful drain — are documented on [`server`]'s module docs and
//! in `DESIGN.md` §9; the reactor and shard ownership model in §14.
//!
//! ```no_run
//! use rzen_serve::{start, Model, ServerConfig};
//!
//! let spec = std::fs::read_to_string("specs/fig3.net").unwrap();
//! let handle = start(ServerConfig::default(), Model::parse(&spec).unwrap()).unwrap();
//! println!("listening on {}", handle.addr());
//! // ... send {"op":"reach","src":"u1:1","dst":"u3:2"} lines at it ...
//! handle.shutdown();
//! handle.join();
//! ```

#![warn(missing_docs)]

mod eloop;
pub mod proto;
mod server;
pub mod signal;

pub use server::{start, LoopMode, Model, ServerConfig, ServerHandle};
