//! Incremental model deltas: the typed delta protocol, the spec applier,
//! and per-device Merkle-style model fingerprints.
//!
//! Real networks change one ACL line or one route at a time; re-parsing
//! the whole spec and discarding every cached verdict and warm solver
//! session for that is the incremental-recompute gap this crate closes.
//! A delta is a sequence of [`DeltaOp`]s, one JSON object per line
//! (NDJSON — the same framing as the serve layer's query plane):
//!
//! ```text
//! {"op":"set-acl","device":"u2","intf":1,"dir":"in","acl":"deny-dport 5000 6000"}
//! {"op":"remove-acl","device":"u2","intf":1,"dir":"in"}
//! {"op":"set-route","device":"u1","prefix":"10.0.0.0/8","port":2}
//! {"op":"remove-route","device":"u1","prefix":"10.0.0.0/8"}
//! {"op":"link-up","a":"u1:2","b":"u2:1"}
//! {"op":"link-down","a":"u1:2","b":"u2:1"}
//! {"op":"add-device","name":"u4","intfs":[1,2]}
//! {"op":"remove-device","name":"u4"}
//! ```
//!
//! [`apply`] patches a parsed [`Spec`] in place and returns a
//! [`DeltaStep`] — the pre-op network plus a [`Touch`] describing what
//! changed — which the engine's dependency-aware cache sweep consumes.
//! ACL shorthands are exactly the spec format's
//! ([`rzen_net::spec::parse_acl_shorthand`]), so a wire delta and a spec
//! line can never disagree about what an ACL means.
//!
//! [`composite_fingerprint`] replaces the serve layer's whole-text FNV
//! hash: each device gets its own structural fingerprint (its interfaces,
//! policies, table, and incident links), and the model identity is the
//! hash of the ordered per-device hashes — so two spec texts that differ
//! only in comments or formatting have the *same* identity, and a
//! one-device change moves exactly one leaf hash.

#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

use rzen_net::acl::Acl;
use rzen_net::device::Interface;
use rzen_net::fwd::FwdRule;
use rzen_net::ip::Prefix;
use rzen_net::spec::{self, Spec};
use rzen_net::topology::{DeltaStep, Device, Network, Touch};
use rzen_obs::json::{escape, parse, Value};

/// Which ACL slot of an interface a delta targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AclDir {
    /// `acl-in`: evaluated on ingress.
    In,
    /// `acl-out`: evaluated on egress.
    Out,
}

impl AclDir {
    fn name(self) -> &'static str {
        match self {
            AclDir::In => "in",
            AclDir::Out => "out",
        }
    }
}

/// One typed delta operation. Device and link endpoints are carried as
/// names (`"u2"`, `"u1:2"`) and resolved against the spec at apply time,
/// so a delta is meaningful independent of device indices.
#[derive(Clone, Debug, PartialEq)]
pub enum DeltaOp {
    /// Append a new, unlinked device with the given interface ids.
    AddDevice {
        /// Device name; must not exist yet.
        name: String,
        /// Interface ids, each with an empty forwarding table.
        intfs: Vec<u8>,
    },
    /// Remove a device and every link touching it.
    RemoveDevice {
        /// Device name; must exist.
        name: String,
    },
    /// Install (or replace) an ACL on one interface.
    SetAcl {
        /// Device name.
        device: String,
        /// Interface id.
        intf: u8,
        /// Which slot (`acl-in` / `acl-out`).
        dir: AclDir,
        /// The ACL, in spec shorthand (`permit`, `deny`,
        /// `deny-dport LO HI`, `permit-dst PREFIX`).
        acl: String,
    },
    /// Clear an ACL slot that currently holds one.
    RemoveAcl {
        /// Device name.
        device: String,
        /// Interface id.
        intf: u8,
        /// Which slot.
        dir: AclDir,
    },
    /// Upsert a forwarding rule on a device (all interfaces of a device
    /// share its table, exactly like the spec's `route` directive).
    SetRoute {
        /// Device name.
        device: String,
        /// Destination prefix; an existing rule for the same prefix is
        /// replaced.
        prefix: Prefix,
        /// Egress port.
        port: u8,
    },
    /// Remove the forwarding rule for a prefix from a device's table.
    RemoveRoute {
        /// Device name.
        device: String,
        /// The rule's prefix; must be present.
        prefix: Prefix,
    },
    /// Add a duplex link between two currently-unlinked endpoints.
    LinkUp {
        /// One endpoint, `device:port`.
        a: String,
        /// The other endpoint, `device:port`.
        b: String,
    },
    /// Remove the duplex link between two endpoints.
    LinkDown {
        /// One endpoint, `device:port`.
        a: String,
        /// The other endpoint, `device:port`.
        b: String,
    },
}

impl DeltaOp {
    /// The wire name of this op.
    pub fn name(&self) -> &'static str {
        match self {
            DeltaOp::AddDevice { .. } => "add-device",
            DeltaOp::RemoveDevice { .. } => "remove-device",
            DeltaOp::SetAcl { .. } => "set-acl",
            DeltaOp::RemoveAcl { .. } => "remove-acl",
            DeltaOp::SetRoute { .. } => "set-route",
            DeltaOp::RemoveRoute { .. } => "remove-route",
            DeltaOp::LinkUp { .. } => "link-up",
            DeltaOp::LinkDown { .. } => "link-down",
        }
    }

    /// Render as one NDJSON line (newline-terminated), parseable by
    /// [`parse_op`].
    pub fn to_line(&self) -> String {
        let mut s = format!("{{\"op\":\"{}\"", self.name());
        match self {
            DeltaOp::AddDevice { name, intfs } => {
                let ids: Vec<String> = intfs.iter().map(|i| i.to_string()).collect();
                s.push_str(&format!(
                    ",\"name\":\"{}\",\"intfs\":[{}]",
                    escape(name),
                    ids.join(",")
                ));
            }
            DeltaOp::RemoveDevice { name } => {
                s.push_str(&format!(",\"name\":\"{}\"", escape(name)));
            }
            DeltaOp::SetAcl {
                device,
                intf,
                dir,
                acl,
            } => {
                s.push_str(&format!(
                    ",\"device\":\"{}\",\"intf\":{intf},\"dir\":\"{}\",\"acl\":\"{}\"",
                    escape(device),
                    dir.name(),
                    escape(acl)
                ));
            }
            DeltaOp::RemoveAcl { device, intf, dir } => {
                s.push_str(&format!(
                    ",\"device\":\"{}\",\"intf\":{intf},\"dir\":\"{}\"",
                    escape(device),
                    dir.name()
                ));
            }
            DeltaOp::SetRoute {
                device,
                prefix,
                port,
            } => {
                s.push_str(&format!(
                    ",\"device\":\"{}\",\"prefix\":\"{prefix}\",\"port\":{port}",
                    escape(device)
                ));
            }
            DeltaOp::RemoveRoute { device, prefix } => {
                s.push_str(&format!(
                    ",\"device\":\"{}\",\"prefix\":\"{prefix}\"",
                    escape(device)
                ));
            }
            DeltaOp::LinkUp { a, b } | DeltaOp::LinkDown { a, b } => {
                s.push_str(&format!(",\"a\":\"{}\",\"b\":\"{}\"", escape(a), escape(b)));
            }
        }
        s.push_str("}\n");
        s
    }
}

/// Parse one NDJSON delta line into a [`DeltaOp`].
pub fn parse_op(line: &str) -> Result<DeltaOp, String> {
    let v = parse(line.trim()).map_err(|e| format!("bad json: {e}"))?;
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing \"op\"".to_string())?;
    let str_field = |key: &str| -> Result<String, String> {
        v.get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("op {op:?} needs string \"{key}\""))
    };
    let port_field = |key: &str| -> Result<u8, String> {
        v.get(key)
            .and_then(Value::as_u64)
            .and_then(|n| u8::try_from(n).ok())
            .ok_or_else(|| format!("op {op:?} needs port \"{key}\" (0-255)"))
    };
    let dir_field = || -> Result<AclDir, String> {
        match str_field("dir")?.as_str() {
            "in" => Ok(AclDir::In),
            "out" => Ok(AclDir::Out),
            other => Err(format!("bad \"dir\" {other:?} (expected \"in\"/\"out\")")),
        }
    };
    let prefix_field = || -> Result<Prefix, String> {
        str_field("prefix")?
            .parse()
            .map_err(|e| format!("bad \"prefix\": {e}"))
    };
    match op {
        "add-device" => {
            let Some(Value::Arr(items)) = v.get("intfs") else {
                return Err("op \"add-device\" needs array \"intfs\"".to_string());
            };
            let intfs: Vec<u8> = items
                .iter()
                .map(|i| {
                    i.as_u64()
                        .and_then(|n| u8::try_from(n).ok())
                        .ok_or_else(|| "bad interface id in \"intfs\"".to_string())
                })
                .collect::<Result<_, _>>()?;
            Ok(DeltaOp::AddDevice {
                name: str_field("name")?,
                intfs,
            })
        }
        "remove-device" => Ok(DeltaOp::RemoveDevice {
            name: str_field("name")?,
        }),
        "set-acl" => Ok(DeltaOp::SetAcl {
            device: str_field("device")?,
            intf: port_field("intf")?,
            dir: dir_field()?,
            acl: str_field("acl")?,
        }),
        "remove-acl" => Ok(DeltaOp::RemoveAcl {
            device: str_field("device")?,
            intf: port_field("intf")?,
            dir: dir_field()?,
        }),
        "set-route" => Ok(DeltaOp::SetRoute {
            device: str_field("device")?,
            prefix: prefix_field()?,
            port: port_field("port")?,
        }),
        "remove-route" => Ok(DeltaOp::RemoveRoute {
            device: str_field("device")?,
            prefix: prefix_field()?,
        }),
        "link-up" => Ok(DeltaOp::LinkUp {
            a: str_field("a")?,
            b: str_field("b")?,
        }),
        "link-down" => Ok(DeltaOp::LinkDown {
            a: str_field("a")?,
            b: str_field("b")?,
        }),
        other => Err(format!("unknown delta op {other:?}")),
    }
}

/// Parse a whole NDJSON delta document (one op per line; blank lines and
/// `#` comment lines are skipped). Errors carry the 1-based line number.
pub fn parse_ops(text: &str) -> Result<Vec<DeltaOp>, String> {
    let mut ops = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        ops.push(parse_op(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(ops)
}

/// The result of applying a delta.
pub struct Applied {
    /// One step per op, in application order — each carries its pre-op
    /// network and what it touched, for the engine's cache sweep.
    pub steps: Vec<DeltaStep>,
    /// Names of every device an op touched (sorted, deduplicated).
    pub touched: Vec<String>,
}

/// Apply a sequence of ops to `spec` in place. On error the spec may be
/// partially patched — apply to a clone and discard it on failure (the
/// serve layer does exactly that, which also keeps the swap atomic).
pub fn apply_all(spec: &mut Spec, ops: &[DeltaOp]) -> Result<Applied, String> {
    let mut steps = Vec::with_capacity(ops.len());
    let mut touched = BTreeSet::new();
    for (i, op) in ops.iter().enumerate() {
        let step = apply(spec, op).map_err(|e| format!("op {} ({}): {e}", i + 1, op.name()))?;
        touched.extend(touched_names(op));
        steps.push(step);
    }
    Ok(Applied {
        steps,
        touched: touched.into_iter().collect(),
    })
}

fn touched_names(op: &DeltaOp) -> Vec<String> {
    let endpoint_dev = |s: &str| s.split(':').next().unwrap_or(s).to_string();
    match op {
        DeltaOp::AddDevice { name, .. } | DeltaOp::RemoveDevice { name } => vec![name.clone()],
        DeltaOp::SetAcl { device, .. }
        | DeltaOp::RemoveAcl { device, .. }
        | DeltaOp::SetRoute { device, .. }
        | DeltaOp::RemoveRoute { device, .. } => vec![device.clone()],
        DeltaOp::LinkUp { a, b } | DeltaOp::LinkDown { a, b } => {
            vec![endpoint_dev(a), endpoint_dev(b)]
        }
    }
}

/// Apply one op to `spec` in place, returning the pre-op network and the
/// touch for the engine's invalidation.
pub fn apply(spec: &mut Spec, op: &DeltaOp) -> Result<DeltaStep, String> {
    let pre = spec.net.clone();
    let touch = match op {
        DeltaOp::AddDevice { name, intfs } => {
            if spec.device_index.contains_key(name) {
                return Err(format!("device {name:?} already exists"));
            }
            let mut seen = Vec::new();
            for &id in intfs {
                if seen.contains(&id) {
                    return Err(format!("interface {id} listed twice"));
                }
                seen.push(id);
            }
            let device = spec.net.add_device(Device {
                name: name.clone(),
                interfaces: intfs
                    .iter()
                    .map(|&id| Interface::new(id, Default::default()))
                    .collect(),
            });
            spec.device_index.insert(name.clone(), device);
            Touch::DeviceAdded { device }
        }
        DeltaOp::RemoveDevice { name } => {
            let idx = *spec
                .device_index
                .get(name)
                .ok_or_else(|| format!("unknown device {name:?}"))?;
            spec.net.devices.remove(idx);
            spec.net
                .links
                .retain(|l| l.from_device != idx && l.to_device != idx);
            for l in &mut spec.net.links {
                if l.from_device > idx {
                    l.from_device -= 1;
                }
                if l.to_device > idx {
                    l.to_device -= 1;
                }
            }
            spec.device_index.remove(name);
            for v in spec.device_index.values_mut() {
                if *v > idx {
                    *v -= 1;
                }
            }
            Touch::DeviceRemoved
        }
        DeltaOp::SetAcl {
            device,
            intf,
            dir,
            acl,
        } => {
            let parsed = spec::parse_acl_shorthand(acl)?;
            let slot = acl_slot(spec, device, *intf, *dir)?;
            *slot = Some(parsed);
            Touch::Intf {
                device: spec.device_index[device],
                intf: *intf,
            }
        }
        DeltaOp::RemoveAcl { device, intf, dir } => {
            let slot = acl_slot(spec, device, *intf, *dir)?;
            if slot.is_none() {
                return Err(format!(
                    "{device}:{intf} has no acl-{} to remove",
                    dir.name()
                ));
            }
            *slot = None;
            Touch::Intf {
                device: spec.device_index[device],
                intf: *intf,
            }
        }
        DeltaOp::SetRoute {
            device,
            prefix,
            port,
        } => {
            let idx = device_with_interfaces(spec, device)?;
            // Interfaces of one device share the table semantically but
            // hold value clones; patch every copy identically.
            for i in &mut spec.net.devices[idx].interfaces {
                match i.table.rules.iter_mut().find(|r| r.prefix == *prefix) {
                    Some(rule) => rule.port = *port,
                    None => i.table.rules.push(FwdRule {
                        prefix: *prefix,
                        port: *port,
                    }),
                }
            }
            Touch::Table { device: idx }
        }
        DeltaOp::RemoveRoute { device, prefix } => {
            let idx = device_with_interfaces(spec, device)?;
            let before = spec.net.devices[idx].interfaces[0].table.rules.len();
            for i in &mut spec.net.devices[idx].interfaces {
                i.table.rules.retain(|r| r.prefix != *prefix);
            }
            if spec.net.devices[idx].interfaces[0].table.rules.len() == before {
                return Err(format!("device {device:?} has no route for {prefix}"));
            }
            Touch::Table { device: idx }
        }
        DeltaOp::LinkUp { a, b } => {
            let (ad, ap) = spec.endpoint(a)?;
            let (bd, bp) = spec.endpoint(b)?;
            for (d, p, name) in [(ad, ap, a), (bd, bp, b)] {
                if spec.net.link_from(d, p).is_some() {
                    return Err(format!("endpoint {name} is already linked"));
                }
            }
            spec.net.add_duplex(ad, ap, bd, bp);
            Touch::LinkUp {
                a: (ad, ap),
                b: (bd, bp),
            }
        }
        DeltaOp::LinkDown { a, b } => {
            let (ad, ap) = spec.endpoint(a)?;
            let (bd, bp) = spec.endpoint(b)?;
            let before = spec.net.links.len();
            spec.net.links.retain(|l| {
                !((l.from_device == ad
                    && l.from_intf == ap
                    && l.to_device == bd
                    && l.to_intf == bp)
                    || (l.from_device == bd
                        && l.from_intf == bp
                        && l.to_device == ad
                        && l.to_intf == ap))
            });
            if spec.net.links.len() + 2 != before {
                return Err(format!("no duplex link between {a} and {b}"));
            }
            Touch::LinkDown {
                a: (ad, ap),
                b: (bd, bp),
            }
        }
    };
    Ok(DeltaStep { pre, touch })
}

fn acl_slot<'s>(
    spec: &'s mut Spec,
    device: &str,
    intf: u8,
    dir: AclDir,
) -> Result<&'s mut Option<Acl>, String> {
    let idx = *spec
        .device_index
        .get(device)
        .ok_or_else(|| format!("unknown device {device:?}"))?;
    let i = spec.net.devices[idx]
        .interfaces
        .iter_mut()
        .find(|i| i.id == intf)
        .ok_or_else(|| format!("device {device:?} has no interface {intf}"))?;
    Ok(match dir {
        AclDir::In => &mut i.acl_in,
        AclDir::Out => &mut i.acl_out,
    })
}

fn device_with_interfaces(spec: &Spec, device: &str) -> Result<usize, String> {
    let idx = *spec
        .device_index
        .get(device)
        .ok_or_else(|| format!("unknown device {device:?}"))?;
    if spec.net.devices[idx].interfaces.is_empty() {
        // Routes live on interface tables; a device without interfaces
        // has nowhere to hold them (the spec parser drops them the same
        // way).
        return Err(format!("device {device:?} has no interfaces"));
    }
    Ok(idx)
}

// ---------------------------------------------------------------------
// Fingerprints

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A `std::hash::Hasher` over FNV-1a, so `#[derive(Hash)]` structures
/// feed the same 64-bit fingerprint space the engine's caches use.
struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// The sub-model fingerprint of one device: its full structure (name,
/// interfaces, policies, forwarding table) plus its incident links. A
/// delta that touches only device `d` moves only `d`'s fingerprint —
/// plus its link peers' when the topology itself changed.
pub fn device_fingerprint(net: &Network, device: usize) -> u64 {
    let mut h = Fnv1a(FNV_OFFSET);
    net.devices[device].hash(&mut h);
    for l in &net.links {
        if l.from_device == device || l.to_device == device {
            l.hash(&mut h);
        }
    }
    h.finish()
}

/// Every device's sub-model fingerprint, in index order.
pub fn device_fingerprints(net: &Network) -> Vec<u64> {
    (0..net.devices.len())
        .map(|d| device_fingerprint(net, d))
        .collect()
}

/// The Merkle-style composite model fingerprint: FNV-1a over the ordered
/// per-device fingerprints. Structural, not textual — reformatting a
/// spec or reordering its comments does not change the model identity,
/// and a one-device delta recombines `n` leaf hashes instead of
/// rehashing the whole text.
pub fn composite_fingerprint(net: &Network) -> u64 {
    let mut h = Fnv1a(FNV_OFFSET);
    (net.devices.len() as u64).hash(&mut h);
    for fp in device_fingerprints(net) {
        fp.hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG3: &str = "\
device u1
  intf 1
  intf 2 gre-start 192.168.0.1 192.168.0.3
device u2
  intf 1 acl-in deny-dport 5000 6000
  intf 2
device u3
  intf 1 gre-end 192.168.0.1 192.168.0.3
  intf 2
route u1 0.0.0.0/0 2
route u2 0.0.0.0/0 2
route u3 10.0.0.0/8 2
link u1:2 u2:1
link u2:2 u3:1
";

    fn fig3() -> Spec {
        spec::parse(FIG3).unwrap()
    }

    #[test]
    fn every_op_round_trips_through_the_wire() {
        let ops = vec![
            DeltaOp::AddDevice {
                name: "u4".into(),
                intfs: vec![1, 2],
            },
            DeltaOp::RemoveDevice { name: "u4".into() },
            DeltaOp::SetAcl {
                device: "u2".into(),
                intf: 1,
                dir: AclDir::In,
                acl: "deny-dport 5000 6000".into(),
            },
            DeltaOp::RemoveAcl {
                device: "u2".into(),
                intf: 1,
                dir: AclDir::Out,
            },
            DeltaOp::SetRoute {
                device: "u1".into(),
                prefix: "10.0.0.0/8".parse().unwrap(),
                port: 2,
            },
            DeltaOp::RemoveRoute {
                device: "u1".into(),
                prefix: "10.0.0.0/8".parse().unwrap(),
            },
            DeltaOp::LinkUp {
                a: "u1:1".into(),
                b: "u3:2".into(),
            },
            DeltaOp::LinkDown {
                a: "u1:2".into(),
                b: "u2:1".into(),
            },
        ];
        for op in &ops {
            let line = op.to_line();
            rzen_obs::json::validate(line.trim()).unwrap();
            assert_eq!(&parse_op(&line).unwrap(), op, "wire: {line}");
        }
        // And as one document.
        let doc: String = ops.iter().map(DeltaOp::to_line).collect();
        assert_eq!(parse_ops(&doc).unwrap(), ops);
    }

    #[test]
    fn rejects_malformed_lines() {
        for line in [
            "",
            "not json",
            "{}",
            "{\"op\":\"warp\"}",
            "{\"op\":\"set-acl\",\"device\":\"u2\"}",
            "{\"op\":\"set-acl\",\"device\":\"u2\",\"intf\":1,\"dir\":\"sideways\",\"acl\":\"deny\"}",
            "{\"op\":\"set-route\",\"device\":\"u1\",\"prefix\":\"nope\",\"port\":2}",
            "{\"op\":\"add-device\",\"name\":\"x\",\"intfs\":[999]}",
        ] {
            assert!(parse_op(line).is_err(), "{line:?} accepted");
        }
    }

    #[test]
    fn set_acl_patches_the_interface() {
        let mut s = fig3();
        let step = apply(
            &mut s,
            &DeltaOp::SetAcl {
                device: "u2".into(),
                intf: 1,
                dir: AclDir::In,
                acl: "deny".into(),
            },
        )
        .unwrap();
        let u2 = s.device_index["u2"];
        assert_eq!(
            step.touch,
            Touch::Intf {
                device: u2,
                intf: 1
            }
        );
        let acl = s.net.devices[u2].interface(1).unwrap().acl_in.as_ref();
        assert_eq!(acl.unwrap().rules.len(), 0); // "deny" = empty rule list
                                                 // The pre-op network still has the old ACL.
        assert_eq!(
            step.pre.devices[u2]
                .interface(1)
                .unwrap()
                .acl_in
                .as_ref()
                .unwrap()
                .rules
                .len(),
            2
        );
    }

    #[test]
    fn route_upsert_hits_every_interface_copy() {
        let mut s = fig3();
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        apply(
            &mut s,
            &DeltaOp::SetRoute {
                device: "u1".into(),
                prefix: p,
                port: 1,
            },
        )
        .unwrap();
        let u1 = &s.net.devices[s.device_index["u1"]];
        for i in &u1.interfaces {
            assert!(i.table.rules.iter().any(|r| r.prefix == p && r.port == 1));
        }
        // The device's interfaces still agree (the serializer requires it).
        assert_eq!(u1.interfaces[0].table, u1.interfaces[1].table);
        // Upsert replaces, never duplicates.
        apply(
            &mut s,
            &DeltaOp::SetRoute {
                device: "u1".into(),
                prefix: p,
                port: 2,
            },
        )
        .unwrap();
        let u1 = &s.net.devices[s.device_index["u1"]];
        assert_eq!(
            u1.interfaces[0]
                .table
                .rules
                .iter()
                .filter(|r| r.prefix == p)
                .count(),
            1
        );
    }

    #[test]
    fn link_cycle_restores_the_network() {
        let mut s = fig3();
        let original = s.net.clone();
        apply(
            &mut s,
            &DeltaOp::LinkDown {
                a: "u2:2".into(),
                b: "u3:1".into(),
            },
        )
        .unwrap();
        assert_eq!(s.net.links.len(), 2);
        apply(
            &mut s,
            &DeltaOp::LinkUp {
                a: "u2:2".into(),
                b: "u3:1".into(),
            },
        )
        .unwrap();
        assert_eq!(s.net, original);
    }

    #[test]
    fn remove_device_fixes_indices_and_links() {
        let mut s = fig3();
        apply(&mut s, &DeltaOp::RemoveDevice { name: "u1".into() }).unwrap();
        assert_eq!(s.net.devices.len(), 2);
        assert_eq!(s.device_index["u2"], 0);
        assert_eq!(s.device_index["u3"], 1);
        // Only the u2-u3 duplex pair survives, re-indexed.
        assert_eq!(s.net.links.len(), 2);
        for l in &s.net.links {
            assert!(l.from_device < 2 && l.to_device < 2);
        }
        // The index is consistent with the device list.
        for (name, &i) in &s.device_index {
            assert_eq!(&s.net.devices[i].name, name);
        }
    }

    #[test]
    fn apply_errors_are_descriptive_and_typed() {
        let mut s = fig3();
        for (op, needle) in [
            (
                DeltaOp::RemoveDevice {
                    name: "nope".into(),
                },
                "unknown device",
            ),
            (
                DeltaOp::AddDevice {
                    name: "u1".into(),
                    intfs: vec![1],
                },
                "already exists",
            ),
            (
                DeltaOp::RemoveAcl {
                    device: "u1".into(),
                    intf: 1,
                    dir: AclDir::In,
                },
                "no acl-in",
            ),
            (
                DeltaOp::RemoveRoute {
                    device: "u1".into(),
                    prefix: "1.2.3.0/24".parse().unwrap(),
                },
                "no route",
            ),
            (
                DeltaOp::LinkUp {
                    a: "u1:2".into(),
                    b: "u3:2".into(),
                },
                "already linked",
            ),
            (
                DeltaOp::LinkDown {
                    a: "u1:1".into(),
                    b: "u3:2".into(),
                },
                "no duplex link",
            ),
        ] {
            let e = apply(&mut s, &op).unwrap_err();
            assert!(e.contains(needle), "{op:?}: {e}");
        }
    }

    #[test]
    fn apply_all_reports_touched_devices_in_order() {
        let mut s = fig3();
        let applied = apply_all(
            &mut s,
            &[
                DeltaOp::SetAcl {
                    device: "u2".into(),
                    intf: 1,
                    dir: AclDir::In,
                    acl: "permit".into(),
                },
                DeltaOp::LinkDown {
                    a: "u2:2".into(),
                    b: "u3:1".into(),
                },
            ],
        )
        .unwrap();
        assert_eq!(applied.steps.len(), 2);
        assert_eq!(applied.touched, vec!["u2".to_string(), "u3".to_string()]);
        // Step 2's pre-net already contains step 1's ACL change.
        let u2 = s.device_index["u2"];
        assert_eq!(
            applied.steps[1].pre.devices[u2]
                .interface(1)
                .unwrap()
                .acl_in
                .as_ref()
                .unwrap()
                .rules
                .len(),
            1
        );
    }

    #[test]
    fn fingerprints_localize_change() {
        let s = fig3();
        let before = device_fingerprints(&s.net);
        let composite_before = composite_fingerprint(&s.net);

        let mut patched = s.clone();
        apply(
            &mut patched,
            &DeltaOp::SetAcl {
                device: "u2".into(),
                intf: 1,
                dir: AclDir::In,
                acl: "deny".into(),
            },
        )
        .unwrap();
        let after = device_fingerprints(&patched.net);
        let u2 = s.device_index["u2"];
        for (i, (b, a)) in before.iter().zip(&after).enumerate() {
            if i == u2 {
                assert_ne!(b, a, "u2's leaf hash must move");
            } else {
                assert_eq!(b, a, "device {i} untouched by the delta");
            }
        }
        assert_ne!(composite_before, composite_fingerprint(&patched.net));

        // A topology change moves both endpoints' leaves.
        let mut unlinked = s.clone();
        apply(
            &mut unlinked,
            &DeltaOp::LinkDown {
                a: "u2:2".into(),
                b: "u3:1".into(),
            },
        )
        .unwrap();
        let after = device_fingerprints(&unlinked.net);
        assert_eq!(before[0], after[0]);
        assert_ne!(before[1], after[1]);
        assert_ne!(before[2], after[2]);
    }

    #[test]
    fn composite_fingerprint_is_structural_not_textual() {
        let a = spec::parse(FIG3).unwrap();
        let reformatted = format!("# a comment\n\n{}", FIG3.replace("  intf", "   intf"));
        let b = spec::parse(&reformatted).unwrap();
        assert_eq!(composite_fingerprint(&a.net), composite_fingerprint(&b.net));
    }

    #[test]
    fn patched_specs_serialize_and_round_trip() {
        let mut s = fig3();
        apply_all(
            &mut s,
            &[
                DeltaOp::SetAcl {
                    device: "u3".into(),
                    intf: 2,
                    dir: AclDir::Out,
                    acl: "permit-dst 10.0.0.0/8".into(),
                },
                DeltaOp::AddDevice {
                    name: "u4".into(),
                    intfs: vec![1, 2],
                },
                DeltaOp::LinkUp {
                    a: "u3:2".into(),
                    b: "u4:1".into(),
                },
                DeltaOp::SetRoute {
                    device: "u4".into(),
                    prefix: "0.0.0.0/0".parse().unwrap(),
                    port: 2,
                },
            ],
        )
        .unwrap();
        let text = spec::serialize(&s).unwrap();
        let reparsed = spec::parse(&text).unwrap();
        assert_eq!(s.net, reparsed.net);
        assert_eq!(s.device_index, reparsed.device_index);
        assert_eq!(
            composite_fingerprint(&s.net),
            composite_fingerprint(&reparsed.net)
        );
    }
}
