//! # rzen-sat — a CDCL SAT solver
//!
//! The satisfiability substrate behind rzen's SMT-style backend. The paper's
//! SMT backend "encodes all primitive operations using the theory of
//! bitvectors before bitblasting the formulas to SAT" (§6); rzen performs
//! the same eager pipeline, and this crate is the SAT engine at the bottom
//! of it.
//!
//! The solver is a conventional conflict-driven clause-learning (CDCL)
//! design:
//!
//! * two watched literals per clause for unit propagation,
//! * first-UIP conflict analysis with clause learning and non-chronological
//!   backjumping,
//! * exponential VSIDS variable activities with an indexed max-heap,
//! * phase saving,
//! * Luby-sequence restarts,
//! * activity-based learnt-clause database reduction,
//! * solving under assumptions (incremental queries reuse learnt clauses).
//!
//! ## Example
//!
//! ```
//! use rzen_sat::{Solver, Lit};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[Lit::pos(a), Lit::pos(b)]);   // a ∨ b
//! s.add_clause(&[Lit::neg(a)]);                // ¬a
//! assert!(s.solve());
//! assert!(!s.value(a));
//! assert!(s.value(b));
//! ```

pub mod dimacs;
mod heap;
mod solver;
mod types;

pub use solver::{SolveStatus, Solver, Stats};
pub use types::{Lit, Var};
