//! # rzen-sat — a CDCL SAT solver
//!
//! The satisfiability substrate behind rzen's SMT-style backend. The paper's
//! SMT backend "encodes all primitive operations using the theory of
//! bitvectors before bitblasting the formulas to SAT" (§6); rzen performs
//! the same eager pipeline, and this crate is the SAT engine at the bottom
//! of it.
//!
//! The solver is a conflict-driven clause-learning (CDCL) design of
//! MiniSat lineage:
//!
//! * clauses stored inline in a flat `u32` arena with a relocating
//!   garbage collector (no per-clause allocation, no tombstone leak),
//! * two watched literals per clause for unit propagation, with
//!   **dedicated binary-clause watch lists** propagated first,
//! * first-UIP conflict analysis with local clause minimization and
//!   non-chronological backjumping,
//! * exponential VSIDS variable activities with an indexed max-heap,
//! * phase saving,
//! * Luby-sequence restarts,
//! * LBD-aware learnt-clause database reduction on MiniSat's geometric
//!   schedule,
//! * level-0 simplification and inprocessing (subsumption, self-subsuming
//!   resolution, bounded variable elimination) for long-lived incremental
//!   sessions,
//! * solving under assumptions (incremental queries reuse learnt clauses).
//!
//! ## Example
//!
//! ```
//! use rzen_sat::{Solver, Lit};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[Lit::pos(a), Lit::pos(b)]);   // a ∨ b
//! s.add_clause(&[Lit::neg(a)]);                // ¬a
//! assert!(s.solve());
//! assert!(!s.value(a));
//! assert!(s.value(b));
//! ```

mod arena;
pub mod dimacs;
mod heap;
mod simplify;
mod solver;
mod types;

pub use solver::{flush_obs_stats, SolveStatus, Solver, Stats};
pub use types::{Lit, Var};
