//! The flat clause arena: every clause lives inline in one `Vec<u32>`,
//! MiniSat `RegionAllocator`-style, with a relocating garbage collector.
//!
//! ## Layout
//!
//! A clause is a contiguous run of `u32` words at a word offset ([`CRef`]):
//!
//! ```text
//! problem clause:  [ header ] [ lit 0 ] [ lit 1 ] … [ lit n-1 ]
//! learnt clause:   [ header ] [ activity: f32 bits ] [ lbd ] [ lit 0 ] … [ lit n-1 ]
//! relocated stub:  [ header | RELOCED ] [ forward CRef ] …old words…
//! ```
//!
//! The header packs `size << 3 | flags` (`LEARNT`, `DELETED`, `RELOCED`),
//! so a clause costs `1 + size` words (learnt: `3 + size`) with no
//! per-clause heap allocation and perfect scan locality for unit
//! propagation. Activity and LBD live inline only for learnt clauses —
//! problem clauses never pay for them.
//!
//! ## Garbage collection
//!
//! Deleting a clause only sets the `DELETED` bit and counts the words as
//! wasted; the block stays in place so outstanding watchers can still see
//! the flag (they are dropped lazily during propagation). When the wasted
//! fraction passes a threshold the solver runs a **relocating GC**: live
//! clauses are copied front-to-back into a fresh arena, each old header is
//! overwritten with a forwarding pointer (`RELOCED` + forward `CRef`), and
//! every root — clause lists, reason references on the trail, watch
//! lists — is rewritten through [`ClauseArena::reloc`]. See
//! `Solver::garbage_collect` for the root-rewrite protocol.

use crate::types::Lit;

/// Word offset of a clause in the arena. `CRef::UNDEF` is the null ref.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub(crate) struct CRef(pub(crate) u32);

impl CRef {
    /// The null clause reference (no reason / no clause).
    pub(crate) const UNDEF: CRef = CRef(u32::MAX);
}

const LEARNT: u32 = 1;
const DELETED: u32 = 2;
const RELOCED: u32 = 4;
const SIZE_SHIFT: u32 = 3;

/// Words occupied by a clause with `size` literals.
#[inline]
fn clause_words(size: usize, learnt: bool) -> usize {
    1 + if learnt { 2 } else { 0 } + size
}

/// The arena itself: a bump allocator over `u32` words plus a wasted-word
/// count that drives GC.
pub(crate) struct ClauseArena {
    data: Vec<u32>,
    wasted: usize,
}

impl ClauseArena {
    pub(crate) fn new() -> ClauseArena {
        ClauseArena {
            data: Vec::new(),
            wasted: 0,
        }
    }

    /// Total words allocated (live + wasted).
    pub(crate) fn len_words(&self) -> usize {
        self.data.len()
    }

    /// Bytes currently held by the arena's buffer (capacity, i.e. what the
    /// process actually pays), for the `sat.arena_bytes` gauge.
    pub(crate) fn capacity_bytes(&self) -> usize {
        self.data.capacity() * 4
    }

    /// Words known dead (deleted clauses + literals shaved off by
    /// strengthening).
    pub(crate) fn wasted_words(&self) -> usize {
        self.wasted
    }

    /// Allocate a clause; `lits.len() >= 2`.
    pub(crate) fn alloc(&mut self, lits: &[Lit], learnt: bool) -> CRef {
        debug_assert!(lits.len() >= 2);
        let cref = CRef(self.data.len() as u32);
        self.data
            .push(((lits.len() as u32) << SIZE_SHIFT) | if learnt { LEARNT } else { 0 });
        if learnt {
            self.data.push(1.0f32.to_bits()); // activity
            self.data.push(lits.len() as u32); // lbd (pessimistic default)
        }
        for &l in lits {
            self.data.push(l.0);
        }
        cref
    }

    #[inline]
    fn header(&self, c: CRef) -> u32 {
        self.data[c.0 as usize]
    }

    #[inline]
    pub(crate) fn size(&self, c: CRef) -> usize {
        (self.header(c) >> SIZE_SHIFT) as usize
    }

    #[inline]
    pub(crate) fn is_learnt(&self, c: CRef) -> bool {
        self.header(c) & LEARNT != 0
    }

    #[inline]
    pub(crate) fn is_deleted(&self, c: CRef) -> bool {
        self.header(c) & DELETED != 0
    }

    #[inline]
    fn lit_base(&self, c: CRef) -> usize {
        c.0 as usize + 1 + if self.header(c) & LEARNT != 0 { 2 } else { 0 }
    }

    #[inline]
    pub(crate) fn lit(&self, c: CRef, i: usize) -> Lit {
        Lit(self.data[self.lit_base(c) + i])
    }

    /// The clause's literals. (`Lit` is `repr(transparent)` over `u32`.)
    #[inline]
    pub(crate) fn lits(&self, c: CRef) -> &[Lit] {
        let base = self.lit_base(c);
        let n = self.size(c);
        // SAFETY: Lit is a transparent u32 wrapper.
        unsafe { std::mem::transmute(&self.data[base..base + n]) }
    }

    #[inline]
    pub(crate) fn lits_mut(&mut self, c: CRef) -> &mut [Lit] {
        let base = self.lit_base(c);
        let n = self.size(c);
        // SAFETY: Lit is a transparent u32 wrapper.
        unsafe { std::mem::transmute(&mut self.data[base..base + n]) }
    }

    #[inline]
    pub(crate) fn activity(&self, c: CRef) -> f32 {
        debug_assert!(self.is_learnt(c));
        f32::from_bits(self.data[c.0 as usize + 1])
    }

    #[inline]
    pub(crate) fn set_activity(&mut self, c: CRef, act: f32) {
        debug_assert!(self.is_learnt(c));
        self.data[c.0 as usize + 1] = act.to_bits();
    }

    #[inline]
    pub(crate) fn lbd(&self, c: CRef) -> u32 {
        debug_assert!(self.is_learnt(c));
        self.data[c.0 as usize + 2]
    }

    #[inline]
    pub(crate) fn set_lbd(&mut self, c: CRef, lbd: u32) {
        debug_assert!(self.is_learnt(c));
        self.data[c.0 as usize + 2] = lbd;
    }

    /// Mark a clause deleted. The block stays; watchers drop it lazily and
    /// the next GC reclaims the words.
    pub(crate) fn delete(&mut self, c: CRef) {
        debug_assert!(!self.is_deleted(c));
        let words = clause_words(self.size(c), self.is_learnt(c));
        self.data[c.0 as usize] |= DELETED;
        self.wasted += words;
    }

    /// Shrink a clause in place to its first `new_size` literals
    /// (strengthening). The shaved words are counted as wasted — the block
    /// keeps its allocated length until the next GC, which copies only the
    /// live prefix.
    pub(crate) fn shrink(&mut self, c: CRef, new_size: usize) {
        let old = self.size(c);
        debug_assert!(new_size >= 2 && new_size < old);
        let flags = self.header(c) & ((1 << SIZE_SHIFT) - 1);
        // Remember the allocated block length in the slack so GC can still
        // step over the block when walking? GC never walks — it copies
        // through roots — so the header can simply take the new size.
        self.data[c.0 as usize] = ((new_size as u32) << SIZE_SHIFT) | flags;
        self.wasted += old - new_size;
        if self.header(c) & LEARNT != 0 {
            let lbd = self.lbd(c).min(new_size as u32);
            self.set_lbd(c, lbd);
        }
    }

    /// Has this clause already been moved by the in-progress GC?
    #[inline]
    fn is_reloced(&self, c: CRef) -> bool {
        self.header(c) & RELOCED != 0
    }

    /// Relocate `c` into `to`, or return its forwarding pointer if it
    /// already moved. Must not be called on deleted clauses.
    pub(crate) fn reloc(&mut self, c: CRef, to: &mut ClauseArena) -> CRef {
        debug_assert!(!self.is_deleted(c));
        if self.is_reloced(c) {
            return CRef(self.data[c.0 as usize + 1]);
        }
        let learnt = self.is_learnt(c);
        let fwd = to.alloc(self.lits(c), learnt);
        if learnt {
            to.set_activity(fwd, self.activity(c));
            to.set_lbd(fwd, self.lbd(c));
        }
        self.data[c.0 as usize] |= RELOCED;
        self.data[c.0 as usize + 1] = fwd.0;
        fwd
    }

    /// An empty arena pre-sized for the live words of `self`, as the GC
    /// to-space.
    pub(crate) fn gc_target(&self) -> ClauseArena {
        ClauseArena {
            data: Vec::with_capacity(self.data.len().saturating_sub(self.wasted)),
            wasted: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(xs: &[u32]) -> Vec<Lit> {
        xs.iter().map(|&x| Lit(x)).collect()
    }

    #[test]
    fn alloc_and_read_back() {
        let mut a = ClauseArena::new();
        let c1 = a.alloc(&lits(&[2, 5, 7]), false);
        let c2 = a.alloc(&lits(&[4, 9]), true);
        assert_eq!(a.size(c1), 3);
        assert!(!a.is_learnt(c1));
        assert_eq!(a.lits(c1), &lits(&[2, 5, 7])[..]);
        assert_eq!(a.size(c2), 2);
        assert!(a.is_learnt(c2));
        assert_eq!(a.activity(c2), 1.0);
        assert_eq!(a.lbd(c2), 2);
        assert_eq!(a.lits(c2), &lits(&[4, 9])[..]);
    }

    #[test]
    fn delete_counts_waste() {
        let mut a = ClauseArena::new();
        let c1 = a.alloc(&lits(&[2, 5, 7]), false);
        let _c2 = a.alloc(&lits(&[4, 9]), true);
        assert_eq!(a.wasted_words(), 0);
        a.delete(c1);
        assert!(a.is_deleted(c1));
        assert_eq!(a.wasted_words(), 4); // header + 3 lits
    }

    #[test]
    fn shrink_keeps_prefix_and_counts_waste() {
        let mut a = ClauseArena::new();
        let c = a.alloc(&lits(&[2, 5, 7, 9]), true);
        a.shrink(c, 2);
        assert_eq!(a.size(c), 2);
        assert_eq!(a.lits(c), &lits(&[2, 5])[..]);
        assert_eq!(a.wasted_words(), 2);
        assert!(a.lbd(c) <= 2);
    }

    #[test]
    fn reloc_moves_once_and_forwards() {
        let mut a = ClauseArena::new();
        let dead = a.alloc(&lits(&[10, 11, 12, 13, 14]), false);
        let c = a.alloc(&lits(&[2, 5, 7]), true);
        a.set_activity(c, 3.5);
        a.set_lbd(c, 2);
        a.delete(dead);
        let mut to = a.gc_target();
        let f1 = a.reloc(c, &mut to);
        let f2 = a.reloc(c, &mut to);
        assert_eq!(f1, f2, "second reloc must follow the forward pointer");
        assert_eq!(to.lits(f1), &lits(&[2, 5, 7])[..]);
        assert_eq!(to.activity(f1), 3.5);
        assert_eq!(to.lbd(f1), 2);
        assert!(to.len_words() < a.len_words(), "dead clause not copied");
        assert_eq!(to.wasted_words(), 0);
    }
}
