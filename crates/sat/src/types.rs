//! Variables and literals.

use std::fmt;

/// A propositional variable, numbered from 0.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The variable's index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable or its negation. Encoded as `var << 1 | sign`
/// where sign 1 means negated. `repr(transparent)` so the clause arena
/// can expose its `u32` words directly as literal slices.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The positive literal of `v`.
    #[inline]
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    #[inline]
    pub fn neg(v: Var) -> Lit {
        Lit(v.0 << 1 | 1)
    }

    /// Build from a variable and a sign (`true` = positive).
    #[inline]
    pub fn new(v: Var, positive: bool) -> Lit {
        Lit(v.0 << 1 | (!positive as u32))
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Is this the positive literal?
    #[inline]
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// Integer code, usable as an index (variables `v` occupy slots
    /// `2v` and `2v+1`).
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}v{}",
            if self.is_pos() { "" } else { "!" },
            self.0 >> 1
        )
    }
}

/// Three-valued assignment state, MiniSat-encoded for branch-free literal
/// evaluation: `TRUE = 0`, `FALSE = 1`, and any value with bit 1 set is
/// undefined. The value of a literal is then `assigns[var] ^ sign`, one
/// load and one xor on the propagation hot path.
pub(crate) mod lbool {
    pub(crate) const TRUE: u8 = 0;
    pub(crate) const FALSE: u8 = 1;
    pub(crate) const UNDEF: u8 = 2;

    /// Encode a concrete boolean.
    #[inline]
    pub(crate) fn from_bool(b: bool) -> u8 {
        !b as u8
    }

    /// Is this value assigned (true or false)?
    #[inline]
    pub(crate) fn is_defined(v: u8) -> bool {
        v & 2 == 0
    }
}

/// The value of literal `l` under `assigns` (indexed by variable):
/// `TRUE`/`FALSE` when the variable is assigned, an undefined (`& 2 != 0`)
/// value otherwise.
#[inline]
pub(crate) fn lit_val(assigns: &[u8], l: Lit) -> u8 {
    assigns[(l.0 >> 1) as usize] ^ (l.0 as u8 & 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_roundtrip() {
        let v = Var(7);
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_pos());
        assert!(!n.is_pos());
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_eq!(Lit::new(v, true), p);
        assert_eq!(Lit::new(v, false), n);
    }

    #[test]
    fn codes_are_adjacent() {
        let v = Var(3);
        assert_eq!(Lit::pos(v).code(), 6);
        assert_eq!(Lit::neg(v).code(), 7);
    }
}
