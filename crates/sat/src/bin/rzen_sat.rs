//! `rzen-sat` — solve a DIMACS CNF file from the command line.
//!
//! ```text
//! rzen-sat problem.cnf
//! ```
//!
//! Prints `s SATISFIABLE` with a `v` model line, or `s UNSATISFIABLE`,
//! in the standard SAT-competition output format. Exit code 10 = SAT,
//! 20 = UNSAT (the competition convention).

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: rzen-sat FILE.cnf");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match rzen_sat::dimacs::solve_text(&text) {
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        Ok(None) => {
            println!("s UNSATISFIABLE");
            std::process::exit(20);
        }
        Ok(Some(model)) => {
            println!("s SATISFIABLE");
            let mut line = String::from("v");
            for l in model {
                line.push(' ');
                line.push_str(&l.to_string());
            }
            line.push_str(" 0");
            println!("{line}");
            std::process::exit(10);
        }
    }
}
