//! Level-0 inprocessing: subsumption, self-subsuming resolution, and
//! bounded variable elimination (BVE), MiniSat `SimpSolver`-lineage.
//!
//! [`Solver::inprocess`] runs at quiesce points (between incremental
//! queries, or once before a one-shot solve). Soundness under sessions:
//!
//! * **Frozen variables are never eliminated.** A session freezes every
//!   variable the outside world can still mention — bitblast-cache
//!   outputs, environment variables, pending activation literals — so
//!   future `add_clause`/assumption calls never reference an eliminated
//!   variable. Tseitin intermediates of retired queries are exactly the
//!   unfrozen ones, and they are the junk worth eliminating.
//! * **Retired activation literals are level-0 facts** (`¬a` asserted),
//!   so their variables are assigned and BVE skips them; the guard
//!   clauses they satisfied are removed by [`Solver::simplify`] first.
//! * **Learnt clauses over an eliminated variable are deleted.** A learnt
//!   clause is implied by the original formula, but after eliminating `v`
//!   nothing re-derives its `v`-literals, and keeping it would prune
//!   models that the elimination is entitled to (unsound). Deleting is
//!   always safe.
//! * **Models are repaired, not re-solved:** each elimination records the
//!   smaller occurrence side plus a default unit in `elim_clauses`;
//!   [`extend_model`] walks the buffer backwards and flips the eliminated
//!   variable wherever a recorded clause would otherwise be false —
//!   MiniSat's `extendModel`, resolution-complete by construction.

use crate::arena::CRef;
use crate::solver::Solver;
use crate::types::{lbool, lit_val, Lit, Var};

/// Stop subsumption after this many literal comparisons (keeps a
/// pathological quiesce pass bounded; the next pass resumes the work).
const SUBSUMPTION_BUDGET: i64 = 4_000_000;
/// Skip BVE on variables whose positive×negative occurrence product
/// exceeds this (the resolvent check itself would be quadratic).
const OCC_PRODUCT_MAX: usize = 400;
/// Never create resolvents longer than this.
const RESOLVENT_MAX: usize = 20;

/// Signature abstraction of a clause: one bit per variable (mod 32).
/// `C ⊆ D` requires `abst(C) & !abst(D) == 0`, a one-word pre-filter
/// that rejects most candidate pairs before any literal scan.
#[inline]
fn abstraction(lits: &[Lit]) -> u32 {
    let mut a = 0u32;
    for &l in lits {
        a |= 1 << (l.var().0 & 31);
    }
    a
}

enum Subsume {
    No,
    /// Every literal of C occurs in D: D is redundant.
    Exact,
    /// C subsumes D except one literal occurs flipped: D can drop it
    /// (self-subsuming resolution). The payload is D's literal to remove.
    Strengthen(Lit),
}

/// Does clause `c` subsume (or almost-subsume) clause `d`?
fn subsumes(solver: &Solver, c: CRef, c_abst: u32, d: CRef, d_abst: u32) -> Subsume {
    if solver.arena.size(c) > solver.arena.size(d) || (c_abst & !d_abst) != 0 {
        return Subsume::No;
    }
    let mut strengthen: Option<Lit> = None;
    'outer: for &lc in solver.arena.lits(c) {
        for &ld in solver.arena.lits(d) {
            if lc == ld {
                continue 'outer;
            }
            if strengthen.is_none() && lc == !ld {
                strengthen = Some(ld);
                continue 'outer;
            }
        }
        return Subsume::No;
    }
    match strengthen {
        None => Subsume::Exact,
        Some(l) => Subsume::Strengthen(l),
    }
}

/// Resolve `pc` (contains `v`) with `nc` (contains `¬v`) on `v` into
/// `out`. Returns `false` for tautological resolvents (leaving `out` in
/// an unspecified state). `stamp`/`gen` form a literal-indexed generation
/// array so the duplicate/tautology checks are O(|pc| + |nc|) with no
/// allocation — the hot case in session inprocessing is erasing dead
/// Tseitin cones, where *every* resolvent is a tautology, so this path
/// must not touch the heap at all.
fn resolve_into(
    solver: &Solver,
    pc: CRef,
    nc: CRef,
    v: Var,
    stamp: &mut [u32],
    gen: u32,
    out: &mut Vec<Lit>,
) -> bool {
    out.clear();
    for &l in solver.arena.lits(pc) {
        if l.var() != v {
            stamp[l.0 as usize] = gen;
            out.push(l);
        }
    }
    for &l in solver.arena.lits(nc) {
        if l.var() == v {
            continue;
        }
        if stamp[(!l).0 as usize] == gen {
            return false;
        }
        if stamp[l.0 as usize] != gen {
            stamp[l.0 as usize] = gen;
            out.push(l);
        }
    }
    true
}

/// Append one elimination record: the eliminated variable's literal
/// first, the clause's other literals, then the group length (so the
/// buffer can be walked back-to-front).
fn push_elim_clause(buf: &mut Vec<u32>, v_lit: Lit, others: &[Lit]) {
    buf.push(v_lit.0);
    let mut n = 1u32;
    for &l in others {
        if l.var() != v_lit.var() {
            buf.push(l.0);
            n += 1;
        }
    }
    buf.push(n);
}

/// Repair a model after variable elimination: walk the elimination
/// buffer backwards (most recently eliminated variable first) and, for
/// every recorded clause not satisfied by the current model, flip its
/// leading literal (always of the eliminated variable) to true.
pub(crate) fn extend_model(elim_clauses: &[u32], model: &mut [bool]) {
    let mut i = elim_clauses.len();
    while i > 0 {
        let len = elim_clauses[i - 1] as usize;
        let group = &elim_clauses[i - 1 - len..i - 1];
        let satisfied = group.iter().any(|&code| {
            let l = Lit(code);
            model[l.var().index()] == l.is_pos()
        });
        if !satisfied {
            let l = Lit(group[0]);
            model[l.var().index()] = l.is_pos();
        }
        i -= len + 1;
    }
}

/// Per-clause bookkeeping during one inprocessing pass.
struct ClauseInfo {
    cref: CRef,
    abst: u32,
}

/// Scratch state for one inprocessing pass. The solver keeps the
/// instance across passes ([`Solver::ip_scratch`]): rebuilding the
/// occurrence lists every pass is the single hottest part of quiescent
/// inprocessing, and reusing the per-variable `Vec` capacities turns it
/// from malloc-bound into pure appends.
#[derive(Default)]
pub(crate) struct Inprocessor {
    infos: Vec<ClauseInfo>,
    /// Occurrence lists by *variable* (either polarity), holding indices
    /// into `infos`. Entries go stale when a clause is deleted or
    /// strengthened; consumers re-check membership.
    occ: Vec<Vec<usize>>,
    queue: Vec<usize>,
    in_queue: Vec<bool>,
    /// Literal-stamp generation array for allocation-free resolution,
    /// indexed by literal code.
    stamp: Vec<u32>,
    stamp_gen: u32,
}

impl Inprocessor {
    fn build(&mut self, solver: &Solver) {
        self.infos.clear();
        self.queue.clear();
        self.in_queue.clear();
        for o in &mut self.occ {
            o.clear();
        }
        self.occ.resize_with(solver.num_vars(), Vec::new);
        // Incremental subsumption: clauses allocated before the last
        // pass's arena watermark were already checked as subsumers
        // against the whole database — only newer allocations enter the
        // queue. (Old clauses can still be *subsumed*: candidates are
        // scanned through the occurrence lists, which hold everything.)
        let mark = solver.subsume_checked_mark;
        for &cref in &solver.clauses {
            if solver.arena.is_deleted(cref) {
                continue;
            }
            let id = self.add_clause(solver, cref);
            if cref.0 >= mark {
                self.queue.push(id);
                self.in_queue[id] = true;
            }
        }
    }

    fn add_clause(&mut self, solver: &Solver, cref: CRef) -> usize {
        let id = self.infos.len();
        let lits = solver.arena.lits(cref);
        self.infos.push(ClauseInfo {
            cref,
            abst: abstraction(lits),
        });
        for &l in lits {
            self.occ[l.var().index()].push(id);
        }
        if self.in_queue.len() < self.infos.len() {
            self.in_queue.push(false);
        }
        id
    }

    fn enqueue(&mut self, id: usize) {
        if !self.in_queue[id] {
            self.in_queue[id] = true;
            self.queue.push(id);
        }
    }
}

impl Solver {
    /// Level-0 inprocessing: subsumption, self-subsuming resolution, and
    /// bounded variable elimination over the problem clauses. Frozen
    /// variables ([`Solver::set_frozen`]) are never eliminated. Returns
    /// `false` if the formula is now unsatisfiable.
    pub fn inprocess(&mut self) -> bool {
        let _span = rzen_obs::span!("sat.inprocess");
        assert_eq!(self.decision_level(), 0, "inprocess above level 0");
        if !self.ok {
            return false;
        }
        // Settle level-0 state first: propagate, drop satisfied clauses,
        // strip false literals. Everything below assumes live clauses
        // have no assigned literals worth worrying about. The sweep
        // invalidates the watches, but so do subsumption (in-place
        // strengthening) and BVE (resolvents): a single rebuild at the
        // end covers all of it.
        if self.propagate() != CRef::UNDEF {
            self.ok = false;
            return false;
        }
        {
            let _s = rzen_obs::span!("sat.ip.sweep");
            self.sweep_for_inprocess();
        }

        let mut ip = self.ip_scratch.take().unwrap_or_default();
        {
            let _s = rzen_obs::span!("sat.ip.occ");
            ip.build(self);
        }
        {
            let _span = rzen_obs::span!("sat.subsume");
            if !self.backward_subsume(&mut ip) {
                return false;
            }
        }
        {
            let _span = rzen_obs::span!("sat.bve");
            if !self.eliminate_vars(&mut ip) {
                return false;
            }
        }

        let _s_purge = rzen_obs::span!("sat.ip.purge");
        // Learnt clauses mentioning an eliminated variable are no longer
        // re-derivable and would unsoundly prune models: delete them.
        let mut dropped = 0u64;
        for i in 0..self.learnts.len() {
            let cref = self.learnts[i];
            if self.arena.is_deleted(cref) {
                continue;
            }
            let dead = self
                .arena
                .lits(cref)
                .iter()
                .any(|l| self.eliminated[l.var().index()]);
            if dead {
                self.arena.delete(cref);
                dropped += 1;
            }
        }
        self.stats.deleted_clauses += dropped;

        {
            let arena = &self.arena;
            self.clauses.retain(|&c| !arena.is_deleted(c));
            self.learnts.retain(|&c| !arena.is_deleted(c));
        }
        // Watches reference deleted clauses and miss the new resolvents:
        // rebuild (the GC does it as a side effect) before propagating
        // the units subsumption/BVE enqueued. Clauses those units satisfy
        // are left for the next gated `simplify` — one more sweep here
        // costs more than carrying a handful of satisfied clauses.
        drop(_s_purge);
        let _s_rb = rzen_obs::span!("sat.ip.rebuild");
        if !self.maybe_gc() {
            self.rebuild_watches();
        }
        if self.propagate() != CRef::UNDEF {
            self.ok = false;
            return false;
        }
        self.subsume_checked_mark = self.arena.len_words() as u32;
        // Park the scratch (occurrence-list capacities, stamp array) for
        // the next pass. Skipped on the UNSAT early-returns above: a dead
        // solver never inprocesses again.
        self.ip_scratch = Some(ip);
        true
    }

    /// Backward subsumption + self-subsuming resolution over the
    /// problem clauses, worklist style with a comparison budget.
    fn backward_subsume(&mut self, ip: &mut Inprocessor) -> bool {
        let mut budget = SUBSUMPTION_BUDGET;
        while let Some(id) = ip.queue.pop() {
            ip.in_queue[id] = false;
            let cref = ip.infos[id].cref;
            // `CRef::UNDEF` in an info marks in-pass deletion — cheaper
            // than chasing the arena header for its DELETED bit.
            if cref == CRef::UNDEF {
                continue;
            }
            if budget < 0 {
                break;
            }
            // Scan candidates through the least-occurring variable of C.
            let best_var = {
                let mut best = usize::MAX;
                let mut best_len = usize::MAX;
                for &l in self.arena.lits(cref) {
                    let vi = l.var().index();
                    let len = ip.occ[vi].len();
                    if len < best_len {
                        best_len = len;
                        best = vi;
                    }
                }
                best
            };
            let c_abst = ip.infos[id].abst;
            let csize = self.arena.size(cref);
            for ci in 0..ip.occ[best_var].len() {
                let did = ip.occ[best_var][ci];
                if did == id {
                    continue;
                }
                let dref = ip.infos[did].cref;
                if dref == CRef::UNDEF || ip.infos[id].cref == CRef::UNDEF {
                    continue;
                }
                budget -= (csize + self.arena.size(dref)) as i64;
                match subsumes(self, cref, c_abst, dref, ip.infos[did].abst) {
                    Subsume::No => {}
                    Subsume::Exact => {
                        self.arena.delete(dref);
                        ip.infos[did].cref = CRef::UNDEF;
                        self.stats.subsumed += 1;
                    }
                    Subsume::Strengthen(l) => {
                        if !self.strengthen_clause(ip, did, l) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Remove `l` from clause `ip.infos[id]` (self-subsuming resolution
    /// or strengthening). Handles the clause collapsing to a unit.
    fn strengthen_clause(&mut self, ip: &mut Inprocessor, id: usize, l: Lit) -> bool {
        let cref = ip.infos[id].cref;
        let size = self.arena.size(cref);
        debug_assert!(size >= 2);
        {
            let lits = self.arena.lits_mut(cref);
            let pos = lits
                .iter()
                .position(|&x| x == l)
                .expect("strengthen literal not in clause");
            lits.swap(pos, size - 1);
        }
        self.stats.strengthened += 1;
        if size == 2 {
            // Collapsed to a unit fact.
            let unit = self.arena.lit(cref, 0);
            self.arena.delete(cref);
            ip.infos[id].cref = CRef::UNDEF;
            match lit_val(&self.assigns, unit) {
                lbool::TRUE => {}
                lbool::FALSE => {
                    self.ok = false;
                    return false;
                }
                _ => self.unchecked_enqueue(unit, CRef::UNDEF),
            }
        } else {
            self.arena.shrink(cref, size - 1);
            ip.infos[id].abst = abstraction(self.arena.lits(cref));
            ip.enqueue(id); // a shorter clause may now subsume others
        }
        true
    }

    /// Bounded variable elimination. Eliminates unfrozen, unassigned
    /// variables whose resolvent set is no larger than the clauses it
    /// replaces (grow = 0), recording the removed clauses for model
    /// extension.
    fn eliminate_vars(&mut self, ip: &mut Inprocessor) -> bool {
        let nv = self.num_vars();
        let mut pos: Vec<usize> = Vec::new();
        let mut neg: Vec<usize> = Vec::new();
        // The literal-stamp array for allocation-free resolution lives on
        // the scratch; its generation counter persists, so old stamps
        // never alias a fresh generation.
        if ip.stamp.len() < 2 * nv {
            ip.stamp.resize(2 * nv, 0);
        }
        let mut scratch: Vec<Lit> = Vec::new();
        // Descending variable order: Tseitin gate outputs have higher
        // indices than their inputs, so a dead circuit is dismantled
        // root-first — eliminating a gate (whose resolvents are all
        // tautologies once nothing constrains its output) frees its
        // inputs' last occurrences, and the whole cone cascades away in
        // this single pass instead of needing one pass per circuit layer.
        for vi in (0..nv).rev() {
            if self.frozen[vi] || self.eliminated[vi] || lbool::is_defined(self.assigns[vi]) {
                continue;
            }
            let v = Var(vi as u32);
            pos.clear();
            neg.clear();
            let plit = Lit::pos(v);
            let nlit = Lit::neg(v);
            let mut skip = false;
            for &id in &ip.occ[vi] {
                let cref = ip.infos[id].cref;
                if cref == CRef::UNDEF {
                    continue; // deleted earlier in this pass
                }
                // One walk classifies the occurrence: positive, negative,
                // or stale (the literal was strengthened away).
                let mut which = 0u8;
                for &l in self.arena.lits(cref) {
                    if l.var() == v {
                        which = if l == plit { 1 } else { 2 };
                        break;
                    }
                }
                match which {
                    1 => pos.push(id),
                    2 => neg.push(id),
                    _ => continue,
                }
                if pos.len() * neg.len() > OCC_PRODUCT_MAX {
                    skip = true;
                    break;
                }
            }
            if skip {
                continue;
            }
            // A variable with no live occurrences (its clauses were all
            // satisfied-swept or strengthened away) is trivially
            // eliminable — zero resolvents. Under recycling it falls
            // through so the index returns to the free list; standalone
            // solvers keep the historical behavior of leaving it be,
            // since their callers may still add clauses over it.
            if pos.is_empty() && neg.is_empty() && !self.recycle_eliminated {
                continue;
            }

            // Count resolvents under the grow=0 / size-cap policy.
            let limit = pos.len() + neg.len();
            let mut resolvents: Vec<Vec<Lit>> = Vec::new();
            let mut ok_elim = true;
            'count: for &pid in &pos {
                for &nid in &neg {
                    ip.stamp_gen += 1;
                    let gen = ip.stamp_gen;
                    let real = resolve_into(
                        self,
                        ip.infos[pid].cref,
                        ip.infos[nid].cref,
                        v,
                        &mut ip.stamp,
                        gen,
                        &mut scratch,
                    );
                    if real {
                        if scratch.len() > RESOLVENT_MAX || resolvents.len() >= limit {
                            ok_elim = false;
                            break 'count;
                        }
                        resolvents.push(scratch.clone());
                    }
                }
            }
            if !ok_elim {
                continue;
            }

            // Commit. Record the smaller side + the opposite unit for
            // model extension, then replace the clauses by the resolvents.
            // Under index recycling no record is kept (the caller promised
            // never to read this variable's model value) and the index
            // goes back on the free list instead.
            if self.recycle_eliminated {
                self.free_vars.push(v);
            } else {
                let (store, store_lit, unit_lit) = if pos.len() <= neg.len() {
                    (&pos, plit, nlit)
                } else {
                    (&neg, nlit, plit)
                };
                for &id in store {
                    // The eliminated variable's literal leads the group.
                    let cref = ip.infos[id].cref;
                    push_elim_clause(&mut self.elim_clauses, store_lit, self.arena.lits(cref));
                }
                self.elim_clauses.push(unit_lit.0);
                self.elim_clauses.push(1);
            }

            for &id in pos.iter().chain(neg.iter()) {
                self.arena.delete(ip.infos[id].cref);
                ip.infos[id].cref = CRef::UNDEF;
            }
            for r in &resolvents {
                // Level-0 filter: units enqueued earlier in this pass may
                // already satisfy or falsify resolvent literals.
                let mut lits: Vec<Lit> = Vec::with_capacity(r.len());
                let mut satisfied = false;
                for &l in r {
                    match lit_val(&self.assigns, l) {
                        lbool::TRUE => {
                            satisfied = true;
                            break;
                        }
                        lbool::FALSE => {}
                        _ => lits.push(l),
                    }
                }
                if satisfied {
                    continue;
                }
                match lits.len() {
                    0 => {
                        self.ok = false;
                        return false;
                    }
                    1 => self.unchecked_enqueue(lits[0], CRef::UNDEF),
                    _ => {
                        let cref = self.arena.alloc(&lits, false);
                        self.clauses.push(cref);
                        ip.add_clause(self, cref);
                    }
                }
            }
            self.eliminated[vi] = true;
            self.stats.eliminated_vars += 1;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn exact_subsumption_removes_clause() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1]), Lit::pos(v[2])]);
        for &x in &v {
            s.set_frozen(x, true);
        }
        assert!(s.inprocess());
        assert_eq!(s.num_clauses(), 1, "the superset clause must be subsumed");
        assert_eq!(s.stats.subsumed, 1);
        assert!(s.solve());
    }

    #[test]
    fn self_subsumption_strengthens() {
        // (a ∨ b) and (¬a ∨ b ∨ c): the first strengthens the second
        // to (b ∨ c).
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
        s.add_clause(&[Lit::neg(v[0]), Lit::pos(v[1]), Lit::pos(v[2])]);
        for &x in &v {
            s.set_frozen(x, true);
        }
        assert!(s.inprocess());
        assert!(s.stats.strengthened >= 1);
        // Both clauses still present (strengthened, not deleted).
        assert_eq!(s.num_clauses(), 2);
        assert!(s.solve_with_assumptions(&[Lit::neg(v[1])]));
        assert!(s.value(v[2]) || s.value(v[0]));
    }

    #[test]
    fn bve_eliminates_tseitin_intermediate() {
        // t ↔ a ∧ b as Tseitin clauses; t unfrozen, a/b frozen.
        // BVE must eliminate t and keep the formula equivalent on {a,b}.
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        let (a, b, t) = (v[0], v[1], v[2]);
        s.add_clause(&[Lit::neg(t), Lit::pos(a)]);
        s.add_clause(&[Lit::neg(t), Lit::pos(b)]);
        s.add_clause(&[Lit::pos(t), Lit::neg(a), Lit::neg(b)]);
        s.set_frozen(a, true);
        s.set_frozen(b, true);
        assert!(s.inprocess());
        assert!(
            s.is_eliminated(t),
            "unfrozen gate output must be eliminated"
        );
        assert_eq!(s.stats.eliminated_vars, 1);
        // Still satisfiable, and the model extension reconstructs t
        // consistently with t ↔ a ∧ b.
        assert!(s.solve_with_assumptions(&[Lit::pos(a), Lit::pos(b)]));
        assert!(s.value(t), "extended model must satisfy t ↔ a∧b");
        assert!(s.solve_with_assumptions(&[Lit::neg(a)]));
        assert!(!s.value(t));
    }

    #[test]
    fn frozen_vars_survive() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause(&[Lit::neg(v[2]), Lit::pos(v[0])]);
        s.add_clause(&[Lit::neg(v[2]), Lit::pos(v[1])]);
        s.add_clause(&[Lit::pos(v[2]), Lit::neg(v[0]), Lit::neg(v[1])]);
        for &x in &v {
            s.set_frozen(x, true);
        }
        assert!(s.inprocess());
        assert_eq!(s.stats.eliminated_vars, 0);
        // Frozen interface still usable in later clauses.
        assert!(s.add_clause(&[Lit::pos(v[2])]));
        assert!(s.solve());
        assert!(s.value(v[0]) && s.value(v[1]));
    }

    #[test]
    fn inprocess_preserves_unsat() {
        // Unsat core over intermediates: (t∨u)(¬t∨u)(t∨¬u)(¬t∨¬u),
        // nothing frozen — whatever inprocessing does, the answer stays
        // UNSAT.
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        let (t, u) = (v[0], v[1]);
        s.add_clause(&[Lit::pos(t), Lit::pos(u)]);
        s.add_clause(&[Lit::neg(t), Lit::pos(u)]);
        s.add_clause(&[Lit::pos(t), Lit::neg(u)]);
        s.add_clause(&[Lit::neg(t), Lit::neg(u)]);
        assert!(!s.inprocess() || !s.solve());
    }

    #[test]
    fn extend_model_walks_groups_backwards() {
        // Eliminate v (var 1): stored side = {(v ∨ x)}, unit ¬v.
        // Model x=false must force v=true; model x=true leaves v at the
        // unit default (false).
        let x = Lit::pos(Var(0));
        let v_pos = Lit::pos(Var(1));
        let v_neg = Lit::neg(Var(1));
        let mut buf = Vec::new();
        push_elim_clause(&mut buf, v_pos, &[v_pos, x]);
        buf.push(v_neg.0);
        buf.push(1);
        let mut model = vec![false, false]; // x=false, v=garbage
        extend_model(&buf, &mut model);
        assert!(model[1], "clause (v ∨ x) with x=false must set v");
        let mut model = vec![true, true]; // x=true, v=garbage(true)
        extend_model(&buf, &mut model);
        assert!(
            !model[1],
            "unit ¬v is the default when clauses are satisfied"
        );
    }

    #[test]
    fn incremental_add_after_inprocess() {
        // Session pattern: inprocess between queries, then new clauses
        // over frozen vars + assumptions.
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        let (a, b, t, act) = (v[0], v[1], v[2], v[3]);
        s.add_clause(&[Lit::neg(t), Lit::pos(a)]);
        s.add_clause(&[Lit::neg(t), Lit::pos(b)]);
        s.add_clause(&[Lit::pos(t), Lit::neg(a), Lit::neg(b)]);
        s.set_frozen(a, true);
        s.set_frozen(b, true);
        s.set_frozen(act, true);
        assert!(s.inprocess());
        // New query: act → a, assume act.
        assert!(s.add_clause(&[Lit::neg(act), Lit::pos(a)]));
        assert!(s.solve_with_assumptions(&[Lit::pos(act)]));
        assert!(s.value(a));
        // Retire and re-inprocess; solver still consistent.
        assert!(s.add_clause(&[Lit::neg(act)]));
        assert!(s.inprocess());
        assert!(s.solve());
    }
}
