//! DIMACS CNF input/output, making the solver usable as a standalone
//! tool and letting its behavior be cross-checked against other solvers
//! on standard benchmark files.

use crate::solver::Solver;
use crate::types::{Lit, Var};

/// A parsed DIMACS problem.
pub struct Dimacs {
    /// Declared variable count.
    pub num_vars: usize,
    /// The clauses, as signed literal lists (DIMACS convention:
    /// 1-based, negative = negated).
    pub clauses: Vec<Vec<i64>>,
}

/// Parse DIMACS CNF text. Accepts comments (`c …`), the problem line
/// (`p cnf V C`), and clauses terminated by `0` (possibly spanning
/// lines). Variables beyond the declared count grow the problem (some
/// generators under-declare).
pub fn parse(text: &str) -> Result<Dimacs, String> {
    let mut num_vars = 0usize;
    let mut declared = false;
    let mut clauses = Vec::new();
    let mut current: Vec<i64> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let mut parts = rest.split_whitespace();
            if parts.next() != Some("cnf") {
                return Err(format!("line {}: expected 'p cnf'", lineno + 1));
            }
            num_vars = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("line {}: bad variable count", lineno + 1))?;
            // Clause count is informative only.
            declared = true;
            continue;
        }
        for tok in line.split_whitespace() {
            let v: i64 = tok
                .parse()
                .map_err(|e| format!("line {}: bad literal {tok:?}: {e}", lineno + 1))?;
            if v == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                num_vars = num_vars.max(v.unsigned_abs() as usize);
                current.push(v);
            }
        }
    }
    if !current.is_empty() {
        clauses.push(current);
    }
    if !declared && clauses.is_empty() {
        return Err("no problem line and no clauses".into());
    }
    Ok(Dimacs { num_vars, clauses })
}

/// Load a parsed problem into a fresh solver. Returns the solver and the
/// variable handles (index i = DIMACS variable i+1).
pub fn load(problem: &Dimacs) -> (Solver, Vec<Var>) {
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..problem.num_vars).map(|_| s.new_var()).collect();
    for clause in &problem.clauses {
        let lits: Vec<Lit> = clause
            .iter()
            .map(|&v| Lit::new(vars[v.unsigned_abs() as usize - 1], v > 0))
            .collect();
        s.add_clause(&lits);
    }
    (s, vars)
}

/// Solve DIMACS text directly; returns `None` for UNSAT, or the model as
/// signed literals (DIMACS `v`-line convention).
pub fn solve_text(text: &str) -> Result<Option<Vec<i64>>, String> {
    let problem = parse(text)?;
    let (mut s, vars) = load(&problem);
    if !s.solve() {
        return Ok(None);
    }
    Ok(Some(
        vars.iter()
            .enumerate()
            .map(|(i, &v)| {
                if s.value(v) {
                    i as i64 + 1
                } else {
                    -(i as i64 + 1)
                }
            })
            .collect(),
    ))
}

/// Serialize clauses to DIMACS CNF text.
pub fn write(num_vars: usize, clauses: &[Vec<i64>]) -> String {
    let mut out = format!("p cnf {} {}\n", num_vars, clauses.len());
    for c in clauses {
        for &l in c {
            out.push_str(&l.to_string());
            out.push(' ');
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAT_EXAMPLE: &str = "\
c a satisfiable example
p cnf 3 3
1 2 0
-1 3 0
-2 -3 0
";

    const UNSAT_EXAMPLE: &str = "\
p cnf 1 2
1 0
-1 0
";

    #[test]
    fn parses_and_solves_sat() {
        let model = solve_text(SAT_EXAMPLE).unwrap().expect("satisfiable");
        assert_eq!(model.len(), 3);
        // Model satisfies each clause.
        let problem = parse(SAT_EXAMPLE).unwrap();
        for clause in &problem.clauses {
            assert!(
                clause.iter().any(|l| model.contains(l)),
                "clause {clause:?}"
            );
        }
    }

    #[test]
    fn detects_unsat() {
        assert_eq!(solve_text(UNSAT_EXAMPLE).unwrap(), None);
    }

    #[test]
    fn multiline_clauses_and_comments() {
        let text = "c x\np cnf 2 1\n1\n2\n0\n";
        let p = parse(text).unwrap();
        assert_eq!(p.clauses, vec![vec![1, 2]]);
    }

    #[test]
    fn underdeclared_vars_grow() {
        let text = "p cnf 1 1\n3 0\n";
        let p = parse(text).unwrap();
        assert_eq!(p.num_vars, 3);
        assert!(solve_text(text).unwrap().is_some());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("p dnf 1 1\n1 0\n").is_err());
        assert!(parse("p cnf x 1\n").is_err());
        assert!(parse("hello\n").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn roundtrip_through_writer() {
        let clauses = vec![vec![1, -2], vec![2, 3, -1]];
        let text = write(3, &clauses);
        let p = parse(&text).unwrap();
        assert_eq!(p.num_vars, 3);
        assert_eq!(p.clauses, clauses);
    }

    #[test]
    fn trailing_clause_without_zero() {
        let p = parse("p cnf 2 1\n1 -2\n").unwrap();
        assert_eq!(p.clauses, vec![vec![1, -2]]);
    }
}
