//! The CDCL solver core, rebuilt to MiniSat lineage on the flat clause
//! arena ([`crate::arena`]).
//!
//! Hot-path design:
//!
//! * clauses live inline in a `u32` arena (one pointer chase per clause,
//!   headers adjacent to literals),
//! * **binary clauses get dedicated watch lists** storing the implied
//!   literal inline, so propagating them never touches clause memory, and
//!   they are drained before long clauses,
//! * long-clause watchers carry a blocker literal that skips the clause
//!   when already satisfied,
//! * assignments are MiniSat-encoded `u8`s so a literal's value is one
//!   load and one xor.
//!
//! Database hygiene (what keeps long-lived incremental sessions fast):
//!
//! * learnt clauses carry an LBD (glue) score; reduction sorts by
//!   (LBD, activity) and keeps glue/binary/locked clauses,
//! * the reduction ceiling follows MiniSat's geometric schedule
//!   (`max_learnts × 1.1` every `100 × 1.5^k` conflicts),
//! * [`Solver::simplify`] removes satisfied clauses and false literals at
//!   level 0 — this is what retires a session query's guard clauses and
//!   its now-vacuous learnt clauses,
//! * deleted clauses are compacted by a relocating GC once a fifth of the
//!   arena is waste; watch lists are rebuilt and reason references
//!   forwarded (see [`Solver::garbage_collect`]),
//! * [`Solver::inprocess`] (in [`crate::simplify`]) adds subsumption,
//!   self-subsumption, and bounded variable elimination at level 0.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::arena::{CRef, ClauseArena};
use crate::heap::ActivityHeap;
use crate::types::{lbool, lit_val, Lit, Var};

/// A watch-list entry. For long clauses `blocker` is some other literal
/// of the clause (if already true the clause is skipped without touching
/// the arena). For binary clauses `blocker` is the *other* literal — the
/// clause body is never read during propagation.
#[derive(Clone, Copy)]
pub(crate) struct Watcher {
    pub(crate) cref: CRef,
    pub(crate) blocker: Lit,
}

/// Solver statistics, exposed for benchmarking and debugging.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of clauses learnt from conflicts (including unit facts).
    pub learned_clauses: u64,
    /// Number of learnt clauses deleted by database reduction or level-0
    /// simplification.
    pub deleted_clauses: u64,
    /// Summed LBD (glue) of learnt clauses at creation; `/ learned_clauses`
    /// is the average glue.
    pub lbd_sum: u64,
    /// Clause-database reductions performed.
    pub reduce_dbs: u64,
    /// Arena garbage collections performed.
    pub gcs: u64,
    /// Clauses removed because another clause subsumes them.
    pub subsumed: u64,
    /// Literals removed by self-subsuming resolution / level-0
    /// strengthening.
    pub strengthened: u64,
    /// Variables removed by bounded variable elimination.
    pub eliminated_vars: u64,
    /// Total `new_var` calls, counting recycled indices. Monotone even
    /// when [`Solver::num_vars`] plateaus under index recycling, so
    /// long-lived sessions can meter how much fresh circuitry arrived
    /// since their last inprocessing pass.
    pub vars_created: u64,
}

/// Result of a budgeted solve ([`Solver::solve_limited`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveStatus {
    /// Satisfiable; a model is available through [`Solver::value`].
    Sat,
    /// Unsatisfiable (under the given assumptions).
    Unsat,
    /// The interrupt flag was raised or the deadline passed before the
    /// search finished. The solver remains usable: learnt clauses are
    /// kept and a later call may complete the query.
    Unknown,
}

/// Internal outcome of one restart-bounded `search` run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SearchResult {
    Sat,
    Unsat,
    Restart,
    Interrupted,
}

/// A CDCL SAT solver. See the crate documentation for the feature list.
pub struct Solver {
    pub(crate) arena: ClauseArena,
    /// Problem (non-learnt) clauses, purged of deleted entries at level-0
    /// simplification points.
    pub(crate) clauses: Vec<CRef>,
    /// Learnt clauses.
    pub(crate) learnts: Vec<CRef>,
    /// Long-clause watch lists, indexed by watched-literal code.
    pub(crate) watches: Vec<Vec<Watcher>>,
    /// Binary-clause watch lists, indexed by literal code; propagated
    /// before long clauses.
    pub(crate) watches_bin: Vec<Vec<Watcher>>,
    pub(crate) assigns: Vec<u8>,
    polarity: Vec<bool>,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f32,
    heap: ActivityHeap,
    pub(crate) trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    pub(crate) reason: Vec<CRef>,
    pub(crate) level: Vec<u32>,
    seen: Vec<bool>,
    /// Frozen variables must not be eliminated by inprocessing: the caller
    /// may still mention them in future clauses or assumptions.
    pub(crate) frozen: Vec<bool>,
    /// Variables removed by bounded variable elimination. Never decided,
    /// never assigned; their model values are reconstructed from
    /// `elim_clauses` after a SAT answer.
    pub(crate) eliminated: Vec<bool>,
    /// Clauses removed by variable elimination, encoded for model
    /// extension as groups `[lit₀(=the eliminated var's literal), …, len]`
    /// walked back-to-front.
    pub(crate) elim_clauses: Vec<u32>,
    pub(crate) ok: bool,
    model: Vec<bool>,
    /// Statistics for the most recent `solve` call sequence.
    pub stats: Stats,
    /// Cooperative cancellation flag, shared with the caller (and, in a
    /// portfolio, with the competing backend). Checked every few dozen
    /// conflicts / few hundred decisions so the hot loops stay hot.
    interrupt: Option<Arc<AtomicBool>>,
    /// Wall-clock cutoff for budgeted solves.
    deadline: Option<Instant>,
    // Geometric clause-database reduction schedule (MiniSat).
    max_learnts: f64,
    learntsize_adjust_confl: f64,
    learntsize_adjust_cnt: i64,
    /// Trail size at the last database sweep; `simplify` re-sweeps only
    /// after [`SIMPLIFY_MIN_TRAIL_DELTA`] further level-0 facts.
    simp_trail_size: usize,
    /// Arena high-water mark at the end of the last inprocessing pass.
    /// Backward subsumption seeds its worklist only with clauses allocated
    /// past it: older clauses were already checked as subsumers against
    /// each other. Reset to 0 by the relocating GC (offsets move), which
    /// conservatively re-checks everything on the next pass.
    pub(crate) subsume_checked_mark: u32,
    /// Variable indices freed by elimination, available for reuse when
    /// [`Solver::set_recycle_eliminated`] is on. Without recycling a
    /// long-lived session's per-variable arrays grow with every query
    /// ever retired, and each O(vars) pass (watch rebuilds, occurrence
    /// lists, model extraction) slows down linearly over the session's
    /// life.
    pub(crate) free_vars: Vec<Var>,
    pub(crate) recycle_eliminated: bool,
    /// Inprocessing scratch (occurrence lists, resolution stamps) kept
    /// across passes so their capacities amortize; see
    /// [`crate::simplify::Inprocessor`].
    pub(crate) ip_scratch: Option<Box<crate::simplify::Inprocessor>>,
    // Reusable scratch buffers — reduce_db and analyze allocate nothing
    // in steady state.
    reduce_scratch: Vec<CRef>,
    learnt_scratch: Vec<Lit>,
    clear_scratch: Vec<Var>,
    /// Stamp array (indexed by decision level) for LBD computation.
    lbd_stamp: Vec<u32>,
    lbd_gen: u32,
}

const VAR_DECAY: f64 = 1.0 / 0.95;
const CLA_DECAY: f32 = 1.0 / 0.999;
const RESTART_BASE: u64 = 100;
/// `max_learnts` floor: below this many learnts, reduction never runs.
const MIN_LEARNTS: f64 = 2000.0;
const LEARNTSIZE_FACTOR: f64 = 1.0 / 3.0;
const LEARNTSIZE_INC: f64 = 1.1;
const LEARNTSIZE_ADJUST_START: f64 = 100.0;
const LEARNTSIZE_ADJUST_INC: f64 = 1.5;
/// `simplify` sweeps the whole database only after this many new level-0
/// facts; below it the sweep costs more than the satisfied clauses it
/// would remove. Sessions quiesce after every query, so without this gate
/// the O(database) sweep runs per retire and dominates incremental solving.
const SIMPLIFY_MIN_TRAIL_DELTA: usize = 32;

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Create an empty solver.
    pub fn new() -> Self {
        Solver {
            arena: ClauseArena::new(),
            clauses: Vec::new(),
            learnts: Vec::new(),
            watches: Vec::new(),
            watches_bin: Vec::new(),
            assigns: Vec::new(),
            polarity: Vec::new(),
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            heap: ActivityHeap::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            reason: Vec::new(),
            level: Vec::new(),
            seen: Vec::new(),
            frozen: Vec::new(),
            eliminated: Vec::new(),
            elim_clauses: Vec::new(),
            ok: true,
            model: Vec::new(),
            stats: Stats::default(),
            interrupt: None,
            deadline: None,
            max_learnts: 0.0,
            learntsize_adjust_confl: LEARNTSIZE_ADJUST_START,
            learntsize_adjust_cnt: LEARNTSIZE_ADJUST_START as i64,
            simp_trail_size: 0,
            subsume_checked_mark: 0,
            free_vars: Vec::new(),
            recycle_eliminated: false,
            ip_scratch: None,
            reduce_scratch: Vec::new(),
            learnt_scratch: Vec::new(),
            clear_scratch: Vec::new(),
            lbd_stamp: Vec::new(),
            lbd_gen: 0,
        }
    }

    /// Install a cooperative interrupt flag: when another thread stores
    /// `true`, a running [`Solver::solve_limited`] returns
    /// [`SolveStatus::Unknown`] at its next check point.
    pub fn set_interrupt(&mut self, flag: Arc<AtomicBool>) {
        self.interrupt = Some(flag);
    }

    /// Install a wall-clock deadline with the same effect as the
    /// interrupt flag.
    pub fn set_deadline(&mut self, deadline: Instant) {
        self.deadline = Some(deadline);
    }

    /// Remove any interrupt flag and deadline.
    pub fn clear_budget(&mut self) {
        self.interrupt = None;
        self.deadline = None;
    }

    #[inline]
    fn budget_exhausted(&self) -> bool {
        if let Some(flag) = &self.interrupt {
            if flag.load(Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        false
    }

    /// Allocate a fresh variable.
    pub fn new_var(&mut self) -> Var {
        self.stats.vars_created += 1;
        if let Some(v) = self.free_vars.pop() {
            // A recycled index: unassigned and clause-free since its
            // elimination (inprocessing deleted every clause mentioning
            // it and rebuilt the watches), so only the elimination mark
            // and stale reason/level bookkeeping need resetting. Stale
            // activity is kept — VSIDS decay washes it out.
            debug_assert!(!lbool::is_defined(self.assigns[v.index()]));
            self.eliminated[v.index()] = false;
            self.frozen[v.index()] = false;
            self.reason[v.index()] = CRef::UNDEF;
            self.level[v.index()] = 0;
            self.polarity[v.index()] = false;
            if !self.heap.contains(v) {
                self.heap.insert(v, &self.activity);
            }
            return v;
        }
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(lbool::UNDEF);
        self.polarity.push(false);
        self.activity.push(0.0);
        self.reason.push(CRef::UNDEF);
        self.level.push(0);
        self.seen.push(false);
        self.frozen.push(false);
        self.eliminated.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.watches_bin.push(Vec::new());
        self.watches_bin.push(Vec::new());
        self.lbd_stamp.push(0);
        self.heap.grow(self.assigns.len());
        self.heap.insert(v, &self.activity);
        v
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of learnt clauses currently in the database. Across
    /// incremental solves this is the state that carries over from one
    /// query to the next (minus what database reduction deleted).
    pub fn num_learnts(&self) -> usize {
        self.learnts.len()
    }

    /// Number of problem (non-learnt) clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses
            .iter()
            .filter(|&&c| !self.arena.is_deleted(c))
            .count()
    }

    /// Bytes currently held by the clause arena (live + not-yet-collected
    /// waste). This is the number the `sat.arena_bytes` gauge reports.
    pub fn arena_bytes(&self) -> usize {
        self.arena.capacity_bytes()
    }

    /// Mark `v` as frozen: inprocessing will never eliminate it. Freeze
    /// every variable that may appear in future clauses or assumptions
    /// (session interface variables, cached circuit outputs).
    pub fn set_frozen(&mut self, v: Var, frozen: bool) {
        self.frozen[v.index()] = frozen;
    }

    /// Unfreeze every variable. Sessions recompute their interface before
    /// each inprocessing pass — a variable the outside world stopped
    /// referencing (an evicted cache entry's circuit) becomes eligible for
    /// elimination only through this reset.
    pub fn clear_frozen(&mut self) {
        for f in &mut self.frozen {
            *f = false;
        }
    }

    /// Has `v` been removed by bounded variable elimination?
    pub fn is_eliminated(&self, v: Var) -> bool {
        self.eliminated[v.index()]
    }

    /// Let [`Solver::new_var`] reuse the indices of eliminated variables.
    ///
    /// This is the long-lived-session mode: without it every retired
    /// query's variables stay allocated forever, all per-variable arrays
    /// grow without bound, and each O(vars) operation slows down linearly
    /// over the session's life. The trade: eliminated variables are no
    /// longer recorded for model extension, so after an elimination their
    /// model values are unspecified. Callers must only read model values
    /// of variables they kept frozen — which a session does anyway, since
    /// an unfrozen variable is by definition one nothing will ever
    /// reference again.
    pub fn set_recycle_eliminated(&mut self, on: bool) {
        self.recycle_eliminated = on;
    }

    /// Variable indices currently parked on the recycling free list.
    /// `num_vars() - num_free_vars()` is the live variable count.
    pub fn num_free_vars(&self) -> usize {
        self.free_vars.len()
    }

    #[inline]
    pub(crate) fn value_lit(&self, l: Lit) -> u8 {
        lit_val(&self.assigns, l)
    }

    #[inline]
    pub(crate) fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Add a clause. Returns `false` if the formula became trivially
    /// unsatisfiable (empty clause after simplification at level 0).
    /// Must be called at decision level 0 (i.e. before/between `solve`s).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert_eq!(self.decision_level(), 0, "add_clause above level 0");
        if !self.ok {
            return false;
        }
        debug_assert!(
            lits.iter().all(|l| !self.eliminated[l.var().index()]),
            "clause mentions an eliminated variable; freeze it before inprocessing"
        );
        // Simplify: sort/dedup, drop false literals, detect tautology.
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        let mut simplified = Vec::with_capacity(ls.len());
        for (i, &l) in ls.iter().enumerate() {
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return true; // tautology: contains l and ¬l
            }
            match self.value_lit(l) {
                lbool::TRUE => return true, // already satisfied at level 0
                lbool::FALSE => {}          // drop
                _ => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(simplified[0], CRef::UNDEF);
                self.ok = self.propagate() == CRef::UNDEF;
                self.ok
            }
            _ => {
                let cref = self.arena.alloc(&simplified, false);
                self.clauses.push(cref);
                self.attach(cref);
                true
            }
        }
    }

    /// Install watchers for a clause (binary clauses go to the dedicated
    /// lists). The clause's first two literals are the watched pair.
    pub(crate) fn attach(&mut self, cref: CRef) {
        let l0 = self.arena.lit(cref, 0);
        let l1 = self.arena.lit(cref, 1);
        let lists = if self.arena.size(cref) == 2 {
            &mut self.watches_bin
        } else {
            &mut self.watches
        };
        lists[(!l0).code()].push(Watcher { cref, blocker: l1 });
        lists[(!l1).code()].push(Watcher { cref, blocker: l0 });
    }

    /// Clear and re-install every watcher from the clause lists. Used
    /// after garbage collection and level-0 clause-database rewrites,
    /// where patching individual lists would cost more than rebuilding.
    pub(crate) fn rebuild_watches(&mut self) {
        for w in &mut self.watches {
            w.clear();
        }
        for w in &mut self.watches_bin {
            w.clear();
        }
        for li in 0..2 {
            let n = if li == 0 {
                self.clauses.len()
            } else {
                self.learnts.len()
            };
            for i in 0..n {
                let cref = if li == 0 {
                    self.clauses[i]
                } else {
                    self.learnts[i]
                };
                if self.arena.is_deleted(cref) {
                    continue;
                }
                let l0 = self.arena.lit(cref, 0);
                let l1 = self.arena.lit(cref, 1);
                let lists = if self.arena.size(cref) == 2 {
                    &mut self.watches_bin
                } else {
                    &mut self.watches
                };
                lists[(!l0).code()].push(Watcher { cref, blocker: l1 });
                lists[(!l1).code()].push(Watcher { cref, blocker: l0 });
            }
        }
    }

    #[inline]
    pub(crate) fn unchecked_enqueue(&mut self, l: Lit, from: CRef) {
        debug_assert!(!lbool::is_defined(self.value_lit(l)));
        let v = l.var();
        self.assigns[v.index()] = lbool::from_bool(l.is_pos());
        self.level[v.index()] = self.decision_level();
        self.reason[v.index()] = from;
        self.trail.push(l);
    }

    /// Unit propagation. Returns the conflicting clause or [`CRef::UNDEF`].
    ///
    /// Binary watch lists are drained first: their implication is inline
    /// in the watcher, so the common Tseitin-gate case never touches
    /// clause memory. Long clauses then use the standard MiniSat
    /// watched-literal scan with blockers over the arena.
    pub(crate) fn propagate(&mut self) -> CRef {
        // Trace gate: when tracing is disabled this is exactly one relaxed
        // atomic load and a branch — the hot-path overhead contract that
        // `tests/obs.rs` asserts.
        if rzen_obs::trace::enabled() {
            rzen_obs::counter!("sat.propagate.calls", "unit-propagation runs (traced runs)").inc();
        }
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let pc = p.code();

            // Binary clauses first: value check + enqueue, nothing else.
            let nbin = self.watches_bin[pc].len();
            let mut bi = 0;
            while bi < nbin {
                let w = self.watches_bin[pc][bi];
                bi += 1;
                let v = lit_val(&self.assigns, w.blocker);
                if v == lbool::FALSE {
                    self.qhead = self.trail.len();
                    return w.cref;
                }
                if !lbool::is_defined(v) {
                    self.unchecked_enqueue(w.blocker, w.cref);
                }
            }

            // Long clauses.
            let false_lit = !p;
            let mut ws = std::mem::take(&mut self.watches[pc]);
            let mut i = 0;
            let mut j = 0;
            let mut conflict = CRef::UNDEF;
            'watches: while i < ws.len() {
                let w = ws[i];
                i += 1;
                if lit_val(&self.assigns, w.blocker) == lbool::TRUE {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let cref = w.cref;
                if self.arena.is_deleted(cref) {
                    continue; // lazily drop watchers of deleted clauses
                }
                // Normalize so the false literal (¬p) is at position 1.
                let first = {
                    let lits = self.arena.lits_mut(cref);
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], false_lit);
                    lits[0]
                };
                if first != w.blocker && lit_val(&self.assigns, first) == lbool::TRUE {
                    ws[j] = Watcher {
                        cref,
                        blocker: first,
                    };
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                {
                    let lits = self.arena.lits_mut(cref);
                    for k in 2..lits.len() {
                        let lk = lits[k];
                        if lit_val(&self.assigns, lk) != lbool::FALSE {
                            lits.swap(1, k);
                            self.watches[(!lk).code()].push(Watcher {
                                cref,
                                blocker: first,
                            });
                            continue 'watches;
                        }
                    }
                }
                // No new watch: clause is unit or conflicting.
                ws[j] = Watcher {
                    cref,
                    blocker: first,
                };
                j += 1;
                if lit_val(&self.assigns, first) == lbool::FALSE {
                    // Conflict: copy the remaining watchers back and stop.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = cref;
                } else {
                    self.unchecked_enqueue(first, cref);
                }
            }
            ws.truncate(j);
            self.watches[pc] = ws;
            if conflict != CRef::UNDEF {
                return conflict;
            }
        }
        CRef::UNDEF
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.bumped(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: CRef) {
        let act = self.arena.activity(cref) + self.cla_inc;
        self.arena.set_activity(cref, act);
        if act > 1e20 || !act.is_finite() {
            self.rescale_clause_activities();
        }
    }

    /// Rescale all learnt-clause activities and `cla_inc`, mirroring the
    /// variable-activity path. Non-finite values (an overflowed increment
    /// added to an activity) are clamped so reduction's `total_cmp` sort
    /// always sees ordered floats.
    fn rescale_clause_activities(&mut self) {
        for &c in &self.learnts {
            let a = self.arena.activity(c) * 1e-20;
            self.arena
                .set_activity(c, if a.is_finite() { a } else { 0.0 });
        }
        self.cla_inc *= 1e-20;
        if !self.cla_inc.is_finite() || self.cla_inc < f32::MIN_POSITIVE {
            self.cla_inc = 1.0;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc *= VAR_DECAY;
        self.cla_inc *= CLA_DECAY;
        if self.cla_inc > 1e20 {
            self.rescale_clause_activities();
        }
    }

    /// Number of distinct decision levels among `lits` — the LBD ("glue")
    /// of a learnt clause.
    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_gen = self.lbd_gen.wrapping_add(1);
        let gen = self.lbd_gen;
        let mut lbd = 0u32;
        for &l in lits {
            let lv = self.level[l.var().index()] as usize;
            if self.lbd_stamp[lv] != gen {
                self.lbd_stamp[lv] = gen;
                lbd += 1;
            }
        }
        lbd
    }

    /// First-UIP conflict analysis with local (reason-subsumption) clause
    /// minimization. Fills `learnt` (asserting literal first) and returns
    /// the backjump level.
    fn analyze(&mut self, mut confl: CRef, learnt: &mut Vec<Lit>) -> u32 {
        learnt.clear();
        learnt.push(Lit(0)); // slot 0 = asserting literal
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut to_clear = std::mem::take(&mut self.clear_scratch);
        to_clear.clear();
        loop {
            if self.arena.is_learnt(confl) {
                self.bump_clause(confl);
                // Glucose-style LBD refresh for clauses used in conflicts
                // (inlined compute_lbd to keep the arena borrow field-local).
                self.lbd_gen = self.lbd_gen.wrapping_add(1);
                let gen = self.lbd_gen;
                let mut lbd = 0u32;
                {
                    let level = &self.level;
                    let stamp = &mut self.lbd_stamp;
                    for &l in self.arena.lits(confl) {
                        let lv = level[l.var().index()] as usize;
                        if stamp[lv] != gen {
                            stamp[lv] = gen;
                            lbd += 1;
                        }
                    }
                }
                if lbd < self.arena.lbd(confl) {
                    self.arena.set_lbd(confl, lbd);
                }
            }
            for idx in 0..self.arena.size(confl) {
                let q = self.arena.lit(confl, idx);
                if Some(q) == p {
                    continue;
                }
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    to_clear.push(v);
                    self.bump_var(v);
                    if self.level[v.index()] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next trail literal to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            counter -= 1;
            p = Some(pl);
            if counter == 0 {
                break;
            }
            confl = self.reason[pl.var().index()];
            debug_assert_ne!(confl, CRef::UNDEF, "resolved literal must have a reason");
        }
        learnt[0] = !p.unwrap();

        // Local minimization: a literal whose reason clause is entirely
        // made of already-seen (or level-0) literals is implied by the
        // rest of the learnt clause and can be dropped.
        let mut w = 1;
        for r in 1..learnt.len() {
            let l = learnt[r];
            let reason = self.reason[l.var().index()];
            let redundant = reason != CRef::UNDEF && {
                let mut red = true;
                for idx in 0..self.arena.size(reason) {
                    let q = self.arena.lit(reason, idx);
                    if q.var() == l.var() {
                        continue;
                    }
                    if !self.seen[q.var().index()] && self.level[q.var().index()] > 0 {
                        red = false;
                        break;
                    }
                }
                red
            };
            if !redundant {
                learnt[w] = l;
                w += 1;
            }
        }
        learnt.truncate(w);

        // Backjump level: highest level among the non-asserting literals.
        let mut bt = 0;
        let mut max_i = 1;
        for (i, &l) in learnt.iter().enumerate().skip(1) {
            let lv = self.level[l.var().index()];
            if lv > bt {
                bt = lv;
                max_i = i;
            }
        }
        if learnt.len() > 1 {
            learnt.swap(1, max_i);
        }
        for &v in &to_clear {
            self.seen[v.index()] = false;
        }
        to_clear.clear();
        self.clear_scratch = to_clear;
        bt
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level as usize];
        while self.trail.len() > bound {
            let l = self.trail.pop().unwrap();
            let v = l.var();
            self.polarity[v.index()] = l.is_pos();
            self.assigns[v.index()] = lbool::UNDEF;
            self.reason[v.index()] = CRef::UNDEF;
            if !self.heap.contains(v) {
                self.heap.insert(v, &self.activity);
            }
        }
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.heap.pop_max(&self.activity) {
            if !lbool::is_defined(self.assigns[v.index()]) && !self.eliminated[v.index()] {
                return Some(v);
            }
        }
        None
    }

    /// Is `cref` the reason for its first literal's assignment? Such
    /// clauses must survive database reduction.
    fn locked(&self, cref: CRef) -> bool {
        let l0 = self.arena.lit(cref, 0);
        self.value_lit(l0) == lbool::TRUE && self.reason[l0.var().index()] == cref
    }

    /// Reduce the learnt-clause database: sort by (LBD desc, activity asc)
    /// and drop the worse half, keeping binary clauses, glue clauses
    /// (LBD ≤ 2), and clauses locked as reasons. Allocation-free in steady
    /// state: the sort buffer is a reusable scratch held on the solver.
    fn reduce_db(&mut self) {
        self.stats.reduce_dbs += 1;
        let mut refs = std::mem::take(&mut self.reduce_scratch);
        refs.clear();
        refs.extend_from_slice(&self.learnts);
        {
            let arena = &self.arena;
            // Worst first: high LBD, then low activity. `total_cmp` keeps
            // the sort total even if an activity reached inf/NaN before
            // rescaling clamped it.
            refs.sort_by(|&a, &b| {
                arena
                    .lbd(b)
                    .cmp(&arena.lbd(a))
                    .then(arena.activity(a).total_cmp(&arena.activity(b)))
            });
        }
        let extra_lim = self.cla_inc / refs.len().max(1) as f32;
        let half = refs.len() / 2;
        let mut removed = 0u64;
        for (idx, &cref) in refs.iter().enumerate() {
            if self.arena.is_deleted(cref) {
                continue;
            }
            if self.arena.size(cref) <= 2 || self.arena.lbd(cref) <= 2 || self.locked(cref) {
                continue;
            }
            if idx < half || self.arena.activity(cref) < extra_lim {
                self.arena.delete(cref);
                removed += 1;
            }
        }
        refs.clear();
        self.reduce_scratch = refs;
        let arena = &self.arena;
        self.learnts.retain(|&c| !arena.is_deleted(c));
        self.stats.deleted_clauses += removed;
        self.maybe_gc();
    }

    /// Run the relocating GC if at least a fifth of the arena is waste.
    /// Returns whether a collection (which rebuilds the watch lists)
    /// actually ran, so callers holding stale watches know whether they
    /// still owe a [`Solver::rebuild_watches`].
    pub(crate) fn maybe_gc(&mut self) -> bool {
        if self.arena.len_words() > 1024 && self.arena.wasted_words() * 5 > self.arena.len_words() {
            self.garbage_collect();
            return true;
        }
        false
    }

    /// Relocating garbage collection: copy live clauses into a fresh
    /// arena, forward every root (clause lists, trail reasons), and
    /// rebuild the watch lists. Deleted clauses are dropped; level-0
    /// reasons pointing at deleted clauses are cleared (they are never
    /// resolved on).
    fn garbage_collect(&mut self) {
        let mut to = self.arena.gc_target();
        {
            let arena = &self.arena;
            self.clauses.retain(|&c| !arena.is_deleted(c));
            self.learnts.retain(|&c| !arena.is_deleted(c));
        }
        // Problem clauses relocate in list order = allocation order, so
        // the subsumption watermark maps to the new offset of the first
        // clause at-or-past it; everything before stays "already checked".
        let old_mark = self.subsume_checked_mark;
        let mut new_mark = None;
        for i in 0..self.clauses.len() {
            if new_mark.is_none() && self.clauses[i].0 >= old_mark {
                new_mark = Some(to.len_words() as u32);
            }
            self.clauses[i] = self.arena.reloc(self.clauses[i], &mut to);
        }
        let new_mark = new_mark.unwrap_or(to.len_words() as u32);
        for i in 0..self.learnts.len() {
            self.learnts[i] = self.arena.reloc(self.learnts[i], &mut to);
        }
        for ti in 0..self.trail.len() {
            let v = self.trail[ti].var();
            let r = self.reason[v.index()];
            if r == CRef::UNDEF {
                continue;
            }
            if self.arena.is_deleted(r) {
                debug_assert_eq!(
                    self.level[v.index()],
                    0,
                    "a reason above level 0 was deleted"
                );
                self.reason[v.index()] = CRef::UNDEF;
            } else {
                self.reason[v.index()] = self.arena.reloc(r, &mut to);
            }
        }
        self.arena = to;
        self.stats.gcs += 1;
        self.subsume_checked_mark = new_mark;
        self.rebuild_watches();
    }

    /// Level-0 database simplification: propagate pending units, remove
    /// satisfied clauses, and strip false literals. In an incremental
    /// session this is what retires a finished query: asserting `¬a` for
    /// its activation literal makes the query's guard clause and most of
    /// its learnt clauses satisfied, and this pass deletes them instead of
    /// letting propagation scan them forever. Returns `false` if the
    /// formula is now unsatisfiable.
    ///
    /// The sweep itself is O(database) — worth it only once enough new
    /// level-0 facts accumulated, so it is skipped until the trail grew by
    /// [`SIMPLIFY_MIN_TRAIL_DELTA`] since the last sweep. (Propagation of
    /// pending units always runs.) Use [`Solver::simplify_force`] to sweep
    /// unconditionally.
    pub fn simplify(&mut self) -> bool {
        self.simplify_inner(false)
    }

    /// [`Solver::simplify`] without the trail-growth gate: always sweeps.
    /// Inprocessing runs this first so the occurrence lists it builds see
    /// no satisfied clauses or false literals.
    pub fn simplify_force(&mut self) -> bool {
        self.simplify_inner(true)
    }

    fn simplify_inner(&mut self, force: bool) -> bool {
        assert_eq!(self.decision_level(), 0, "simplify above level 0");
        if !self.ok {
            return false;
        }
        if self.propagate() != CRef::UNDEF {
            self.ok = false;
            return false;
        }
        let grown = self.trail.len().saturating_sub(self.simp_trail_size);
        if grown == 0 || (!force && grown < SIMPLIFY_MIN_TRAIL_DELTA) {
            return true; // not enough new facts to pay for the sweep
        }
        self.sweep_list(false);
        self.sweep_list(true);
        if self.propagate() != CRef::UNDEF {
            self.ok = false;
            return false;
        }
        self.rebuild_watches();
        self.simp_trail_size = self.trail.len();
        self.maybe_gc();
        true
    }

    /// Sweep both clause lists without rebuilding the watches: the entry
    /// sweep of [`Solver::inprocess`], which tears the watches down anyway
    /// (subsumption strengthens clauses in place, BVE adds resolvents) and
    /// rebuilds them exactly once at the end. Callers must not propagate
    /// until then.
    pub(crate) fn sweep_for_inprocess(&mut self) {
        if self.trail.len() == self.simp_trail_size {
            return; // no new facts since the last sweep: nothing to find
        }
        self.sweep_list(false);
        self.sweep_list(true);
        self.simp_trail_size = self.trail.len();
    }

    /// Remove satisfied clauses and false literals from one clause list
    /// at level 0. Watches must be rebuilt afterwards.
    fn sweep_list(&mut self, learnt_list: bool) {
        let mut list = if learnt_list {
            std::mem::take(&mut self.learnts)
        } else {
            std::mem::take(&mut self.clauses)
        };
        let mut removed = 0u64;
        list.retain(|&cref| {
            if self.arena.is_deleted(cref) {
                return false;
            }
            let mut satisfied = false;
            let mut false_lits = 0usize;
            for idx in 0..self.arena.size(cref) {
                match self.value_lit(self.arena.lit(cref, idx)) {
                    lbool::TRUE => {
                        satisfied = true;
                        break;
                    }
                    lbool::FALSE => false_lits += 1,
                    _ => {}
                }
            }
            if satisfied {
                self.arena.delete(cref);
                if learnt_list {
                    removed += 1;
                }
                return false;
            }
            if false_lits > 0 {
                let size = self.arena.size(cref);
                let new_size = size - false_lits;
                debug_assert!(
                    new_size >= 2,
                    "a unit/empty clause survived level-0 propagation"
                );
                let assigns = &self.assigns;
                let lits = self.arena.lits_mut(cref);
                let mut w = 0;
                for r in 0..size {
                    if lit_val(assigns, lits[r]) != lbool::FALSE {
                        lits[w] = lits[r];
                        w += 1;
                    }
                }
                self.arena.shrink(cref, new_size);
                self.stats.strengthened += false_lits as u64;
            }
            true
        });
        if learnt_list {
            self.learnts = list;
            self.stats.deleted_clauses += removed;
        } else {
            self.clauses = list;
        }
    }

    /// Luby restart sequence (0-indexed): 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
    fn luby(mut x: u64) -> u64 {
        let mut size = 1u64;
        let mut seq = 0u32;
        while size < x + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        while size - 1 != x {
            size = (size - 1) / 2;
            seq -= 1;
            x %= size;
        }
        1u64 << seq
    }

    /// Solve the formula with no assumptions.
    pub fn solve(&mut self) -> bool {
        self.solve_with_assumptions(&[])
    }

    /// Solve under the given assumptions. Learnt clauses persist across
    /// calls, making repeated related queries cheap.
    ///
    /// If a budget ([`Solver::set_interrupt`] / [`Solver::set_deadline`])
    /// is installed and exhausted mid-search, this returns `false` like an
    /// UNSAT result; callers that need to distinguish must use
    /// [`Solver::solve_limited`].
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> bool {
        self.solve_limited(assumptions) == SolveStatus::Sat
    }

    /// Solve under the given assumptions, honoring any installed
    /// interrupt flag and deadline. Returns [`SolveStatus::Unknown`] when
    /// the budget ran out first; the solver stays usable afterwards.
    pub fn solve_limited(&mut self, assumptions: &[Lit]) -> SolveStatus {
        let _span = rzen_obs::span!(
            "sat.solve",
            "vars" => self.num_vars() as u64,
            "clauses" => self.clauses.len() as u64
        );
        let before = self.stats;
        let status = self.solve_limited_inner(assumptions);
        rzen_obs::counter!("sat.solves", "CDCL solve calls").inc();
        flush_obs_stats(&before, &self.stats);
        rzen_obs::gauge!(
            "sat.arena_bytes",
            "bytes held by the SAT clause arena (live + uncollected waste)"
        )
        .set(self.arena_bytes() as i64);
        status
    }

    fn solve_limited_inner(&mut self, assumptions: &[Lit]) -> SolveStatus {
        if !self.ok {
            return SolveStatus::Unsat;
        }
        debug_assert!(
            assumptions
                .iter()
                .all(|l| !self.eliminated[l.var().index()]),
            "assumption over an eliminated variable"
        );
        self.cancel_until(0);
        if self.budget_exhausted() {
            return SolveStatus::Unknown;
        }
        if !self.simplify() {
            return SolveStatus::Unsat;
        }
        // Geometric clause-database reduction schedule: the ceiling starts
        // proportional to the problem size and grows by ×1.1 every
        // 100·1.5^k conflicts.
        self.max_learnts = (self.clauses.len() as f64 * LEARNTSIZE_FACTOR).max(MIN_LEARNTS);
        self.learntsize_adjust_confl = LEARNTSIZE_ADJUST_START;
        self.learntsize_adjust_cnt = LEARNTSIZE_ADJUST_START as i64;
        let mut restarts = 0u64;
        loop {
            let budget = RESTART_BASE * Self::luby(restarts);
            let result = {
                let _span = rzen_obs::span!("sat.search", "restart" => restarts);
                self.search(budget, assumptions)
            };
            match result {
                SearchResult::Sat => {
                    self.model = self.assigns.iter().map(|&a| a == lbool::TRUE).collect();
                    crate::simplify::extend_model(&self.elim_clauses, &mut self.model);
                    self.cancel_until(0);
                    return SolveStatus::Sat;
                }
                SearchResult::Unsat => {
                    self.cancel_until(0);
                    return SolveStatus::Unsat;
                }
                SearchResult::Restart => {
                    restarts += 1;
                    self.stats.restarts += 1;
                    rzen_obs::trace::instant1("sat.restart", "conflicts", self.stats.conflicts);
                    self.cancel_until(0);
                }
                SearchResult::Interrupted => {
                    self.cancel_until(0);
                    return SolveStatus::Unknown;
                }
            }
        }
    }

    /// Run CDCL until a result, a conflict-budget restart, exhaustion, or
    /// a budget interruption.
    fn search(&mut self, budget: u64, assumptions: &[Lit]) -> SearchResult {
        let mut conflicts = 0u64;
        loop {
            let confl = self.propagate();
            if confl != CRef::UNDEF {
                conflicts += 1;
                self.stats.conflicts += 1;
                // Poll the budget on a conflict cadence: often enough to
                // stop within milliseconds, rare enough to stay off the
                // profile. The sampled trace event shares the cadence.
                if self.stats.conflicts & 0x3F == 0 {
                    rzen_obs::trace::instant1("sat.conflict", "total", self.stats.conflicts);
                    if self.budget_exhausted() {
                        return SearchResult::Interrupted;
                    }
                }
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SearchResult::Unsat;
                }
                let mut learnt = std::mem::take(&mut self.learnt_scratch);
                let bt = self.analyze(confl, &mut learnt);
                self.cancel_until(bt);
                self.stats.learned_clauses += 1;
                if learnt.len() == 1 {
                    // A unit learnt clause is a permanent level-0 fact.
                    debug_assert_eq!(bt, 0);
                    self.stats.lbd_sum += 1;
                    self.unchecked_enqueue(learnt[0], CRef::UNDEF);
                } else {
                    let cref = self.arena.alloc(&learnt, true);
                    let lbd = self.compute_lbd(&learnt);
                    self.arena.set_lbd(cref, lbd);
                    self.stats.lbd_sum += lbd as u64;
                    self.learnts.push(cref);
                    self.attach(cref);
                    self.bump_clause(cref);
                    self.unchecked_enqueue(learnt[0], cref);
                }
                self.learnt_scratch = learnt;
                self.decay_activities();
                self.learntsize_adjust_cnt -= 1;
                if self.learntsize_adjust_cnt <= 0 {
                    self.learntsize_adjust_confl *= LEARNTSIZE_ADJUST_INC;
                    self.learntsize_adjust_cnt = self.learntsize_adjust_confl as i64;
                    self.max_learnts *= LEARNTSIZE_INC;
                }
                if conflicts >= budget {
                    return SearchResult::Restart;
                }
                if self.learnts.len() as f64 - self.trail.len() as f64 >= self.max_learnts {
                    self.reduce_db();
                }
            } else {
                // Decide: assumptions first, then VSIDS.
                let dl = self.decision_level() as usize;
                if dl < assumptions.len() {
                    let a = assumptions[dl];
                    match self.value_lit(a) {
                        lbool::TRUE => {
                            // Already implied: introduce an empty decision
                            // level so assumption indexing stays aligned.
                            self.trail_lim.push(self.trail.len());
                        }
                        // All decisions below are assumption-forced, so a
                        // false assumption here means the assumption set is
                        // inconsistent with the formula.
                        lbool::FALSE => return SearchResult::Unsat,
                        _ => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(a, CRef::UNDEF);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => return SearchResult::Sat,
                    Some(v) => {
                        self.stats.decisions += 1;
                        // Second poll cadence for instances that rarely
                        // conflict (long propagation-dominated runs).
                        if self.stats.decisions & 0xFF == 0 {
                            rzen_obs::trace::instant1("sat.decide", "total", self.stats.decisions);
                            if self.budget_exhausted() {
                                return SearchResult::Interrupted;
                            }
                        }
                        self.trail_lim.push(self.trail.len());
                        let lit = Lit::new(v, self.polarity[v.index()]);
                        self.unchecked_enqueue(lit, CRef::UNDEF);
                    }
                }
            }
        }
    }

    /// The value of `v` in the most recent satisfying model.
    /// Panics if the last `solve` did not return `true`.
    pub fn value(&self, v: Var) -> bool {
        assert!(
            !self.model.is_empty(),
            "no model: last solve was UNSAT or never ran"
        );
        self.model[v.index()]
    }
}

/// Fold the delta between two [`Stats`] snapshots into the global obs
/// metric registry. Called once per `solve_limited` (and by session
/// layers after out-of-band inprocessing), so the per-step hot loops
/// never touch an atomic metric.
pub fn flush_obs_stats(before: &Stats, after: &Stats) {
    rzen_obs::counter!("sat.conflicts", "CDCL conflicts across all solves")
        .add(after.conflicts - before.conflicts);
    rzen_obs::counter!("sat.decisions", "CDCL decisions across all solves")
        .add(after.decisions - before.decisions);
    rzen_obs::counter!("sat.propagations", "literals propagated across all solves")
        .add(after.propagations - before.propagations);
    rzen_obs::counter!("sat.restarts", "CDCL restarts across all solves")
        .add(after.restarts - before.restarts);
    rzen_obs::counter!("sat.learned_clauses", "clauses learnt across all solves")
        .add(after.learned_clauses - before.learned_clauses);
    rzen_obs::counter!(
        "sat.lbd_sum",
        "summed LBD (glue) of learnt clauses at creation"
    )
    .add(after.lbd_sum - before.lbd_sum);
    rzen_obs::counter!(
        "sat.deleted_clauses",
        "learnt clauses deleted by reduction/simplification"
    )
    .add(after.deleted_clauses - before.deleted_clauses);
    rzen_obs::counter!("sat.reduce_dbs", "clause-database reductions")
        .add(after.reduce_dbs - before.reduce_dbs);
    rzen_obs::counter!("sat.gc_runs", "clause-arena garbage collections")
        .add(after.gcs - before.gcs);
    rzen_obs::counter!("sat.subsumed", "clauses removed by subsumption")
        .add(after.subsumed - before.subsumed);
    rzen_obs::counter!(
        "sat.strengthened",
        "literals removed by strengthening/self-subsumption"
    )
    .add(after.strengthened - before.strengthened);
    rzen_obs::counter!(
        "sat.eliminated_vars",
        "variables removed by bounded variable elimination"
    )
    .add(after.eliminated_vars - before.eliminated_vars);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        assert!(s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]));
        assert!(s.solve());
        assert!(s.value(v[0]) || s.value(v[1]));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[Lit::pos(v[0])]);
        s.add_clause(&[Lit::neg(v[0])]);
        assert!(!s.solve());
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        lits(&mut s, 3);
        assert!(s.solve());
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause(&[Lit::pos(v[0])]);
        s.add_clause(&[Lit::neg(v[0]), Lit::pos(v[1])]);
        s.add_clause(&[Lit::neg(v[1]), Lit::pos(v[2])]);
        s.add_clause(&[Lit::neg(v[2]), Lit::pos(v[3])]);
        assert!(s.solve());
        assert!(s.value(v[0]) && s.value(v[1]) && s.value(v[2]) && s.value(v[3]));
    }

    #[test]
    fn tautological_clause_ignored() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        assert!(s.add_clause(&[Lit::pos(v[0]), Lit::neg(v[0])]));
        assert!(s.add_clause(&[Lit::neg(v[1])]));
        assert!(s.solve());
        assert!(!s.value(v[1]));
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p[i][j]: pigeon i in hole j. 3 pigeons, 2 holes.
        let mut s = Solver::new();
        let mut p = [[Var(0); 2]; 3];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&[Lit::pos(row[0]), Lit::pos(row[1])]);
        }
        #[allow(clippy::needless_range_loop)] // column-wise over p
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert!(!s.solve());
    }

    #[test]
    fn pigeonhole_5_into_4_unsat() {
        let n = 5;
        let m = 4;
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..n)
            .map(|_| (0..m).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            let c: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
            s.add_clause(&c);
        }
        #[allow(clippy::needless_range_loop)] // column-wise over p
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert!(!s.solve());
    }

    #[test]
    fn assumptions_sat_and_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
        assert!(s.solve_with_assumptions(&[Lit::neg(v[0])]));
        assert!(s.value(v[1]));
        assert!(!s.solve_with_assumptions(&[Lit::neg(v[0]), Lit::neg(v[1])]));
        // Solver is reusable after an UNSAT-under-assumptions call.
        assert!(s.solve());
    }

    #[test]
    fn contradictory_assumptions() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        assert!(!s.solve_with_assumptions(&[Lit::pos(v[0]), Lit::neg(v[0])]));
        assert!(s.solve());
    }

    #[test]
    fn xor_chain_sat() {
        // x0 ⊕ x1 = 1, x1 ⊕ x2 = 1, ... forces alternation; satisfiable.
        let mut s = Solver::new();
        let n = 20;
        let v = lits(&mut s, n);
        for i in 0..n - 1 {
            let (a, b) = (v[i], v[i + 1]);
            s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
            s.add_clause(&[Lit::neg(a), Lit::neg(b)]);
        }
        s.add_clause(&[Lit::pos(v[0])]);
        assert!(s.solve());
        for (i, &var) in v.iter().enumerate() {
            assert_eq!(s.value(var), i % 2 == 0);
        }
    }

    #[test]
    fn xor_cycle_odd_unsat() {
        // An odd cycle of inequalities (graph 2-coloring of an odd cycle).
        let mut s = Solver::new();
        let n = 7;
        let v = lits(&mut s, n);
        for i in 0..n {
            let (a, b) = (v[i], v[(i + 1) % n]);
            s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
            s.add_clause(&[Lit::neg(a), Lit::neg(b)]);
        }
        assert!(!s.solve());
    }

    #[test]
    fn luby_sequence() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(Solver::luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn duplicate_literals_handled() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        assert!(s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[0])]));
        assert!(s.solve());
    }

    #[test]
    fn add_clause_after_unsat_is_noop() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[Lit::pos(v[0])]);
        s.add_clause(&[Lit::neg(v[0])]);
        assert!(!s.add_clause(&[Lit::pos(v[0])]));
        assert!(!s.solve());
    }

    #[test]
    fn stats_accumulate() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1]), Lit::pos(v[2])]);
        s.solve();
        assert!(s.stats.decisions + s.stats.propagations > 0);
    }

    fn pigeonhole(n: usize, m: usize) -> Solver {
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..n)
            .map(|_| (0..m).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            let c: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
            s.add_clause(&c);
        }
        #[allow(clippy::needless_range_loop)] // column-wise over p
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        s
    }

    #[test]
    fn learned_clause_stat_counts() {
        let mut s = pigeonhole(5, 4);
        assert!(!s.solve());
        assert!(s.stats.learned_clauses > 0);
        assert!(s.stats.lbd_sum > 0, "learnt clauses must carry an LBD");
    }

    #[test]
    fn pre_raised_interrupt_returns_unknown() {
        let mut s = pigeonhole(5, 4);
        let flag = Arc::new(AtomicBool::new(true));
        s.set_interrupt(Arc::clone(&flag));
        assert_eq!(s.solve_limited(&[]), SolveStatus::Unknown);
        // Clearing the budget completes the query with the true answer.
        s.clear_budget();
        assert_eq!(s.solve_limited(&[]), SolveStatus::Unsat);
    }

    #[test]
    fn expired_deadline_interrupts_hard_instance() {
        // Large enough that the search cannot finish before the very
        // first budget check.
        let mut s = pigeonhole(9, 8);
        s.set_deadline(Instant::now());
        assert_eq!(s.solve_limited(&[]), SolveStatus::Unknown);
        // Unknown must never be cached as a verdict: the solver still
        // works once the deadline is lifted.
        s.clear_budget();
        assert_eq!(s.solve_limited(&[]), SolveStatus::Unsat);
    }

    #[test]
    fn budgeted_sat_still_produces_model() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
        s.set_interrupt(Arc::new(AtomicBool::new(false)));
        s.set_deadline(Instant::now() + std::time::Duration::from_secs(60));
        assert_eq!(s.solve_limited(&[]), SolveStatus::Sat);
        assert!(s.value(v[0]) || s.value(v[1]));
    }

    #[test]
    fn clause_activity_overflow_does_not_panic_reduce_db() {
        // Regression: cla_inc used to overflow f32 to inf, poisoning
        // clause activities; the activity sort then hit
        // `partial_cmp(..).unwrap()` on NaN and aborted the worker.
        // With total_cmp + rescaling this must stay alive and ordered.
        let mut s = pigeonhole(6, 5);
        // Force the overflow directly: a pathological increment and
        // poisoned activities, exactly what ~90k undecayed conflicts
        // produce.
        s.cla_inc = f32::MAX;
        s.solve(); // learns clauses, bumps with the huge increment
        for &c in s.learnts.clone().iter().take(3) {
            s.arena.set_activity(c, f32::NAN);
        }
        s.cla_inc = f32::INFINITY;
        s.decay_activities(); // must rescale, clamp, and not panic
        assert!(s.cla_inc.is_finite() && s.cla_inc > 0.0);
        if !s.learnts.is_empty() {
            s.reduce_db(); // must not panic on the sort
        }
        for &c in &s.learnts {
            assert!(
                s.arena.activity(c).is_finite(),
                "rescale must clamp non-finite activities"
            );
        }
    }

    #[test]
    fn simplify_removes_satisfied_clauses() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1]), Lit::pos(v[2])]);
        s.add_clause(&[Lit::neg(v[0]), Lit::pos(v[3]), Lit::pos(v[1])]);
        assert_eq!(s.num_clauses(), 2);
        // Satisfy the first clause at level 0. One unit is below the
        // sweep gate's trail-delta, so force the sweep.
        s.add_clause(&[Lit::pos(v[0])]);
        assert!(s.simplify_force());
        // Clause 1 is satisfied (removed); clause 2 lost its false ¬v0.
        assert_eq!(s.num_clauses(), 1);
        assert!(s.stats.strengthened >= 1);
        assert!(s.solve());
    }

    #[test]
    fn gc_compacts_deleted_clauses_and_preserves_answers() {
        let mut s = Solver::new();
        let v = lits(&mut s, 30);
        // A satisfiable band of medium clauses.
        for i in 0..27 {
            s.add_clause(&[Lit::pos(v[i]), Lit::pos(v[i + 1]), Lit::pos(v[i + 2])]);
        }
        // Satisfy + retire most of them via level-0 facts.
        for &vi in v.iter().take(27) {
            s.add_clause(&[Lit::pos(vi)]);
        }
        assert!(s.simplify_force());
        let before = s.arena.len_words();
        // Force a GC regardless of the 20% threshold by deleting and
        // collecting repeatedly through simplify; at minimum the waste
        // accounting must see the deletions.
        assert!(s.arena.wasted_words() > 0 || s.arena.len_words() < before || s.stats.gcs > 0);
        assert!(s.solve());
        for &vi in v.iter().take(27) {
            assert!(s.value(vi));
        }
    }

    #[test]
    fn binary_clause_propagation_and_conflict() {
        // Pure-binary chain a → b → c plus ¬c: conflict found in the
        // binary fast path, analysis still sound.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[Lit::neg(v[0]), Lit::pos(v[1])]);
        s.add_clause(&[Lit::neg(v[1]), Lit::pos(v[2])]);
        s.add_clause(&[Lit::neg(v[2])]);
        assert!(s.solve());
        assert!(!s.value(v[0]));
        // And the UNSAT case.
        s.add_clause(&[Lit::pos(v[0])]);
        assert!(!s.solve());
    }
}
