//! The CDCL solver core.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::heap::ActivityHeap;
use crate::types::{LBool, Lit, Var};

/// Index of a clause in the clause arena.
type ClauseRef = u32;

struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    deleted: bool,
    activity: f32,
}

#[derive(Clone, Copy)]
struct Watcher {
    cref: ClauseRef,
    /// A literal of the clause other than the watched one; if it is already
    /// true the clause is satisfied and we can skip scanning it.
    blocker: Lit,
}

/// Solver statistics, exposed for benchmarking and debugging.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of clauses learnt from conflicts (including unit facts).
    pub learned_clauses: u64,
    /// Number of learnt clauses deleted by database reduction.
    pub deleted_clauses: u64,
}

/// Result of a budgeted solve ([`Solver::solve_limited`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveStatus {
    /// Satisfiable; a model is available through [`Solver::value`].
    Sat,
    /// Unsatisfiable (under the given assumptions).
    Unsat,
    /// The interrupt flag was raised or the deadline passed before the
    /// search finished. The solver remains usable: learnt clauses are
    /// kept and a later call may complete the query.
    Unknown,
}

/// Internal outcome of one restart-bounded `search` run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SearchResult {
    Sat,
    Unsat,
    Restart,
    Interrupted,
}

/// A CDCL SAT solver. See the crate documentation for the feature list.
pub struct Solver {
    clauses: Vec<Clause>,
    learnts: Vec<ClauseRef>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    polarity: Vec<bool>,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f32,
    heap: ActivityHeap,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    reason: Vec<Option<ClauseRef>>,
    level: Vec<u32>,
    seen: Vec<bool>,
    ok: bool,
    model: Vec<bool>,
    /// Statistics for the most recent `solve` call sequence.
    pub stats: Stats,
    /// Cooperative cancellation flag, shared with the caller (and, in a
    /// portfolio, with the competing backend). Checked every few dozen
    /// conflicts / few hundred decisions so the hot loops stay hot.
    interrupt: Option<Arc<AtomicBool>>,
    /// Wall-clock cutoff for budgeted solves.
    deadline: Option<Instant>,
}

const VAR_DECAY: f64 = 1.0 / 0.95;
const CLA_DECAY: f32 = 1.0 / 0.999;
const RESTART_BASE: u64 = 100;

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Create an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            learnts: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            polarity: Vec::new(),
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            heap: ActivityHeap::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            reason: Vec::new(),
            level: Vec::new(),
            seen: Vec::new(),
            ok: true,
            model: Vec::new(),
            stats: Stats::default(),
            interrupt: None,
            deadline: None,
        }
    }

    /// Install a cooperative interrupt flag: when another thread stores
    /// `true`, a running [`Solver::solve_limited`] returns
    /// [`SolveStatus::Unknown`] at its next check point.
    pub fn set_interrupt(&mut self, flag: Arc<AtomicBool>) {
        self.interrupt = Some(flag);
    }

    /// Install a wall-clock deadline with the same effect as the
    /// interrupt flag.
    pub fn set_deadline(&mut self, deadline: Instant) {
        self.deadline = Some(deadline);
    }

    /// Remove any interrupt flag and deadline.
    pub fn clear_budget(&mut self) {
        self.interrupt = None;
        self.deadline = None;
    }

    #[inline]
    fn budget_exhausted(&self) -> bool {
        if let Some(flag) = &self.interrupt {
            if flag.load(Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        false
    }

    /// Allocate a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.polarity.push(false);
        self.activity.push(0.0);
        self.reason.push(None);
        self.level.push(0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.grow(self.assigns.len());
        self.heap.insert(v, &self.activity);
        v
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of learnt clauses currently in the database. Across
    /// incremental solves this is the state that carries over from one
    /// query to the next (minus what database reduction deleted).
    pub fn num_learnts(&self) -> usize {
        self.learnts.len()
    }

    /// Number of problem (non-learnt) clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses
            .iter()
            .filter(|c| !c.learnt && !c.deleted)
            .count()
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> LBool {
        match self.assigns[l.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_pos() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
            LBool::False => {
                if l.is_pos() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
        }
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Add a clause. Returns `false` if the formula became trivially
    /// unsatisfiable (empty clause after simplification at level 0).
    /// Must be called at decision level 0 (i.e. before/between `solve`s).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert_eq!(self.decision_level(), 0, "add_clause above level 0");
        if !self.ok {
            return false;
        }
        // Simplify: sort/dedup, drop false literals, detect tautology.
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        let mut simplified = Vec::with_capacity(ls.len());
        for (i, &l) in ls.iter().enumerate() {
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return true; // tautology: contains l and ¬l
            }
            match self.lit_value(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {}          // drop
                LBool::Undef => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(simplified[0], None);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach_new(simplified, false);
                true
            }
        }
    }

    fn attach_new(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len() as ClauseRef;
        let w0 = Watcher {
            cref,
            blocker: lits[1],
        };
        let w1 = Watcher {
            cref,
            blocker: lits[0],
        };
        self.watches[(!lits[0]).code()].push(w0);
        self.watches[(!lits[1]).code()].push(w1);
        self.clauses.push(Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
        });
        if learnt {
            self.learnts.push(cref);
        }
        cref
    }

    #[inline]
    fn unchecked_enqueue(&mut self, l: Lit, from: Option<ClauseRef>) {
        debug_assert_eq!(self.lit_value(l), LBool::Undef);
        let v = l.var();
        self.assigns[v.index()] = LBool::from_bool(l.is_pos());
        self.level[v.index()] = self.decision_level();
        self.reason[v.index()] = from;
        self.trail.push(l);
    }

    /// Unit propagation. Returns the conflicting clause, if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        // Trace gate: when tracing is disabled this is exactly one relaxed
        // atomic load and a branch — the hot-path overhead contract that
        // `tests/obs.rs` asserts.
        if rzen_obs::trace::enabled() {
            rzen_obs::counter!("sat.propagate.calls", "unit-propagation runs (traced runs)").inc();
        }
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut i = 0;
            // Take the watch list to appease the borrow checker; we write a
            // compacted list back at the end.
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut j = 0;
            let mut conflict = None;
            'watches: while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.lit_value(w.blocker) == LBool::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let c = &mut self.clauses[w.cref as usize];
                if c.deleted {
                    continue; // lazily drop watchers of deleted clauses
                }
                // Normalize so that the false literal (¬p) is at position 1.
                let false_lit = !p;
                if c.lits[0] == false_lit {
                    c.lits.swap(0, 1);
                }
                debug_assert_eq!(c.lits[1], false_lit);
                let first = c.lits[0];
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[j] = Watcher {
                        cref: w.cref,
                        blocker: first,
                    };
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                for k in 2..self.clauses[w.cref as usize].lits.len() {
                    let lk = self.clauses[w.cref as usize].lits[k];
                    if self.lit_value(lk) != LBool::False {
                        let c = &mut self.clauses[w.cref as usize];
                        c.lits.swap(1, k);
                        self.watches[(!lk).code()].push(Watcher {
                            cref: w.cref,
                            blocker: first,
                        });
                        continue 'watches;
                    }
                }
                // No new watch: clause is unit or conflicting.
                ws[j] = Watcher {
                    cref: w.cref,
                    blocker: first,
                };
                j += 1;
                if self.lit_value(first) == LBool::False {
                    // Conflict: copy the remaining watchers back and stop.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(w.cref);
                } else {
                    self.unchecked_enqueue(first, Some(w.cref));
                }
            }
            ws.truncate(j);
            self.watches[p.code()] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.bumped(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for &lr in &self.learnts {
                self.clauses[lr as usize].activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, mut confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot 0 = asserting literal
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        loop {
            if self.clauses[confl as usize].learnt {
                self.bump_clause(confl);
            }
            let lits = self.clauses[confl as usize].lits.clone();
            for &q in &lits {
                if Some(q) == p {
                    continue;
                }
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next trail literal to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            counter -= 1;
            p = Some(pl);
            if counter == 0 {
                break;
            }
            confl = self.reason[pl.var().index()].expect("resolved literal must have a reason");
        }
        learnt[0] = !p.unwrap();
        // Backjump level: highest level among the non-asserting literals.
        let mut bt = 0;
        let mut max_i = 1;
        for (i, &l) in learnt.iter().enumerate().skip(1) {
            let lv = self.level[l.var().index()];
            if lv > bt {
                bt = lv;
                max_i = i;
            }
        }
        if learnt.len() > 1 {
            learnt.swap(1, max_i);
        }
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        (learnt, bt)
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level as usize];
        while self.trail.len() > bound {
            let l = self.trail.pop().unwrap();
            let v = l.var();
            self.polarity[v.index()] = l.is_pos();
            self.assigns[v.index()] = LBool::Undef;
            self.reason[v.index()] = None;
            if !self.heap.contains(v) {
                self.heap.insert(v, &self.activity);
            }
        }
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.heap.pop_max(&self.activity) {
            if self.assigns[v.index()] == LBool::Undef {
                return Some(v);
            }
        }
        None
    }

    /// Reduce the learnt clause database: drop the half with the lowest
    /// activity (keeping binary clauses and clauses that are reasons for
    /// current assignments).
    fn reduce_db(&mut self) {
        let mut refs = self.learnts.clone();
        refs.sort_by(|&a, &b| {
            self.clauses[a as usize]
                .activity
                .partial_cmp(&self.clauses[b as usize].activity)
                .unwrap()
        });
        let mut locked = vec![false; self.clauses.len()];
        for l in &self.trail {
            if let Some(r) = self.reason[l.var().index()] {
                locked[r as usize] = true;
            }
        }
        let half = refs.len() / 2;
        let mut removed = 0;
        for &cref in refs.iter().take(half) {
            let c = &self.clauses[cref as usize];
            if c.lits.len() <= 2 || locked[cref as usize] || c.deleted {
                continue;
            }
            self.clauses[cref as usize].deleted = true;
            removed += 1;
        }
        self.learnts.retain(|&c| !self.clauses[c as usize].deleted);
        self.stats.deleted_clauses += removed;
    }

    /// Luby restart sequence (0-indexed): 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
    fn luby(mut x: u64) -> u64 {
        let mut size = 1u64;
        let mut seq = 0u32;
        while size < x + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        while size - 1 != x {
            size = (size - 1) / 2;
            seq -= 1;
            x %= size;
        }
        1u64 << seq
    }

    /// Solve the formula with no assumptions.
    pub fn solve(&mut self) -> bool {
        self.solve_with_assumptions(&[])
    }

    /// Solve under the given assumptions. Learnt clauses persist across
    /// calls, making repeated related queries cheap.
    ///
    /// If a budget ([`Solver::set_interrupt`] / [`Solver::set_deadline`])
    /// is installed and exhausted mid-search, this returns `false` like an
    /// UNSAT result; callers that need to distinguish must use
    /// [`Solver::solve_limited`].
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> bool {
        self.solve_limited(assumptions) == SolveStatus::Sat
    }

    /// Solve under the given assumptions, honoring any installed
    /// interrupt flag and deadline. Returns [`SolveStatus::Unknown`] when
    /// the budget ran out first; the solver stays usable afterwards.
    pub fn solve_limited(&mut self, assumptions: &[Lit]) -> SolveStatus {
        let _span = rzen_obs::span!(
            "sat.solve",
            "vars" => self.num_vars() as u64,
            "clauses" => self.clauses.len() as u64
        );
        let before = self.stats;
        let status = self.solve_limited_inner(assumptions);
        flush_obs_stats(&before, &self.stats);
        status
    }

    fn solve_limited_inner(&mut self, assumptions: &[Lit]) -> SolveStatus {
        if !self.ok {
            return SolveStatus::Unsat;
        }
        self.cancel_until(0);
        if self.budget_exhausted() {
            return SolveStatus::Unknown;
        }
        let max_learnts_base = (self.clauses.len() / 3).max(4000);
        let mut restarts = 0u64;
        loop {
            let budget = RESTART_BASE * Self::luby(restarts);
            let max_learnts = max_learnts_base + 100 * restarts as usize;
            let result = {
                let _span = rzen_obs::span!("sat.search", "restart" => restarts);
                self.search(budget, max_learnts, assumptions)
            };
            match result {
                SearchResult::Sat => {
                    self.model = self.assigns.iter().map(|&a| a == LBool::True).collect();
                    self.cancel_until(0);
                    return SolveStatus::Sat;
                }
                SearchResult::Unsat => {
                    self.cancel_until(0);
                    return SolveStatus::Unsat;
                }
                SearchResult::Restart => {
                    restarts += 1;
                    self.stats.restarts += 1;
                    rzen_obs::trace::instant1("sat.restart", "conflicts", self.stats.conflicts);
                    self.cancel_until(0);
                }
                SearchResult::Interrupted => {
                    self.cancel_until(0);
                    return SolveStatus::Unknown;
                }
            }
        }
    }

    /// Run CDCL until a result, a conflict-budget restart, exhaustion, or
    /// a budget interruption.
    fn search(&mut self, budget: u64, max_learnts: usize, assumptions: &[Lit]) -> SearchResult {
        let mut conflicts = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                conflicts += 1;
                self.stats.conflicts += 1;
                // Poll the budget on a conflict cadence: often enough to
                // stop within milliseconds, rare enough to stay off the
                // profile. The sampled trace event shares the cadence.
                if self.stats.conflicts & 0x3F == 0 {
                    rzen_obs::trace::instant1("sat.conflict", "total", self.stats.conflicts);
                    if self.budget_exhausted() {
                        return SearchResult::Interrupted;
                    }
                }
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SearchResult::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.cancel_until(bt);
                self.stats.learned_clauses += 1;
                if learnt.len() == 1 {
                    // A unit learnt clause is a permanent level-0 fact.
                    debug_assert_eq!(bt, 0);
                    self.unchecked_enqueue(learnt[0], None);
                } else {
                    let cref = self.attach_new(learnt.clone(), true);
                    self.bump_clause(cref);
                    self.unchecked_enqueue(learnt[0], Some(cref));
                }
                self.var_inc *= VAR_DECAY;
                self.cla_inc *= CLA_DECAY;
                if conflicts >= budget {
                    return SearchResult::Restart;
                }
                if self.learnts.len() > max_learnts {
                    self.reduce_db();
                }
            } else {
                // Decide: assumptions first, then VSIDS.
                let dl = self.decision_level() as usize;
                if dl < assumptions.len() {
                    let a = assumptions[dl];
                    match self.lit_value(a) {
                        LBool::True => {
                            // Already implied: introduce an empty decision
                            // level so assumption indexing stays aligned.
                            self.trail_lim.push(self.trail.len());
                        }
                        // All decisions below are assumption-forced, so a
                        // false assumption here means the assumption set is
                        // inconsistent with the formula.
                        LBool::False => return SearchResult::Unsat,
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(a, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => return SearchResult::Sat,
                    Some(v) => {
                        self.stats.decisions += 1;
                        // Second poll cadence for instances that rarely
                        // conflict (long propagation-dominated runs).
                        if self.stats.decisions & 0xFF == 0 {
                            rzen_obs::trace::instant1("sat.decide", "total", self.stats.decisions);
                            if self.budget_exhausted() {
                                return SearchResult::Interrupted;
                            }
                        }
                        self.trail_lim.push(self.trail.len());
                        let lit = Lit::new(v, self.polarity[v.index()]);
                        self.unchecked_enqueue(lit, None);
                    }
                }
            }
        }
    }

    /// The value of `v` in the most recent satisfying model.
    /// Panics if the last `solve` did not return `true`.
    pub fn value(&self, v: Var) -> bool {
        assert!(
            !self.model.is_empty(),
            "no model: last solve was UNSAT or never ran"
        );
        self.model[v.index()]
    }
}

/// Fold the delta between two [`Stats`] snapshots into the global obs
/// metric registry. Called once per `solve_limited`, so the per-step hot
/// loops never touch an atomic metric.
fn flush_obs_stats(before: &Stats, after: &Stats) {
    rzen_obs::counter!("sat.solves", "CDCL solve calls").inc();
    rzen_obs::counter!("sat.conflicts", "CDCL conflicts across all solves")
        .add(after.conflicts - before.conflicts);
    rzen_obs::counter!("sat.decisions", "CDCL decisions across all solves")
        .add(after.decisions - before.decisions);
    rzen_obs::counter!("sat.propagations", "literals propagated across all solves")
        .add(after.propagations - before.propagations);
    rzen_obs::counter!("sat.restarts", "CDCL restarts across all solves")
        .add(after.restarts - before.restarts);
    rzen_obs::counter!("sat.learned_clauses", "clauses learnt across all solves")
        .add(after.learned_clauses - before.learned_clauses);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        assert!(s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]));
        assert!(s.solve());
        assert!(s.value(v[0]) || s.value(v[1]));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[Lit::pos(v[0])]);
        s.add_clause(&[Lit::neg(v[0])]);
        assert!(!s.solve());
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        lits(&mut s, 3);
        assert!(s.solve());
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause(&[Lit::pos(v[0])]);
        s.add_clause(&[Lit::neg(v[0]), Lit::pos(v[1])]);
        s.add_clause(&[Lit::neg(v[1]), Lit::pos(v[2])]);
        s.add_clause(&[Lit::neg(v[2]), Lit::pos(v[3])]);
        assert!(s.solve());
        assert!(s.value(v[0]) && s.value(v[1]) && s.value(v[2]) && s.value(v[3]));
    }

    #[test]
    fn tautological_clause_ignored() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        assert!(s.add_clause(&[Lit::pos(v[0]), Lit::neg(v[0])]));
        assert!(s.add_clause(&[Lit::neg(v[1])]));
        assert!(s.solve());
        assert!(!s.value(v[1]));
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p[i][j]: pigeon i in hole j. 3 pigeons, 2 holes.
        let mut s = Solver::new();
        let mut p = [[Var(0); 2]; 3];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&[Lit::pos(row[0]), Lit::pos(row[1])]);
        }
        #[allow(clippy::needless_range_loop)] // column-wise over p
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert!(!s.solve());
    }

    #[test]
    fn pigeonhole_5_into_4_unsat() {
        let n = 5;
        let m = 4;
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..n)
            .map(|_| (0..m).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            let c: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
            s.add_clause(&c);
        }
        #[allow(clippy::needless_range_loop)] // column-wise over p
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert!(!s.solve());
    }

    #[test]
    fn assumptions_sat_and_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
        assert!(s.solve_with_assumptions(&[Lit::neg(v[0])]));
        assert!(s.value(v[1]));
        assert!(!s.solve_with_assumptions(&[Lit::neg(v[0]), Lit::neg(v[1])]));
        // Solver is reusable after an UNSAT-under-assumptions call.
        assert!(s.solve());
    }

    #[test]
    fn contradictory_assumptions() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        assert!(!s.solve_with_assumptions(&[Lit::pos(v[0]), Lit::neg(v[0])]));
        assert!(s.solve());
    }

    #[test]
    fn xor_chain_sat() {
        // x0 ⊕ x1 = 1, x1 ⊕ x2 = 1, ... forces alternation; satisfiable.
        let mut s = Solver::new();
        let n = 20;
        let v = lits(&mut s, n);
        for i in 0..n - 1 {
            let (a, b) = (v[i], v[i + 1]);
            s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
            s.add_clause(&[Lit::neg(a), Lit::neg(b)]);
        }
        s.add_clause(&[Lit::pos(v[0])]);
        assert!(s.solve());
        for (i, &var) in v.iter().enumerate() {
            assert_eq!(s.value(var), i % 2 == 0);
        }
    }

    #[test]
    fn xor_cycle_odd_unsat() {
        // An odd cycle of inequalities (graph 2-coloring of an odd cycle).
        let mut s = Solver::new();
        let n = 7;
        let v = lits(&mut s, n);
        for i in 0..n {
            let (a, b) = (v[i], v[(i + 1) % n]);
            s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
            s.add_clause(&[Lit::neg(a), Lit::neg(b)]);
        }
        assert!(!s.solve());
    }

    #[test]
    fn luby_sequence() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(Solver::luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn duplicate_literals_handled() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        assert!(s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[0])]));
        assert!(s.solve());
    }

    #[test]
    fn add_clause_after_unsat_is_noop() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[Lit::pos(v[0])]);
        s.add_clause(&[Lit::neg(v[0])]);
        assert!(!s.add_clause(&[Lit::pos(v[0])]));
        assert!(!s.solve());
    }

    #[test]
    fn stats_accumulate() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1]), Lit::pos(v[2])]);
        s.solve();
        assert!(s.stats.decisions + s.stats.propagations > 0);
    }

    fn pigeonhole(n: usize, m: usize) -> Solver {
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..n)
            .map(|_| (0..m).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            let c: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
            s.add_clause(&c);
        }
        #[allow(clippy::needless_range_loop)] // column-wise over p
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        s
    }

    #[test]
    fn learned_clause_stat_counts() {
        let mut s = pigeonhole(5, 4);
        assert!(!s.solve());
        assert!(s.stats.learned_clauses > 0);
    }

    #[test]
    fn pre_raised_interrupt_returns_unknown() {
        let mut s = pigeonhole(5, 4);
        let flag = Arc::new(AtomicBool::new(true));
        s.set_interrupt(Arc::clone(&flag));
        assert_eq!(s.solve_limited(&[]), SolveStatus::Unknown);
        // Clearing the budget completes the query with the true answer.
        s.clear_budget();
        assert_eq!(s.solve_limited(&[]), SolveStatus::Unsat);
    }

    #[test]
    fn expired_deadline_interrupts_hard_instance() {
        // Large enough that the search cannot finish before the very
        // first budget check.
        let mut s = pigeonhole(9, 8);
        s.set_deadline(Instant::now());
        assert_eq!(s.solve_limited(&[]), SolveStatus::Unknown);
        // Unknown must never be cached as a verdict: the solver still
        // works once the deadline is lifted.
        s.clear_budget();
        assert_eq!(s.solve_limited(&[]), SolveStatus::Unsat);
    }

    #[test]
    fn budgeted_sat_still_produces_model() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
        s.set_interrupt(Arc::new(AtomicBool::new(false)));
        s.set_deadline(Instant::now() + std::time::Duration::from_secs(60));
        assert_eq!(s.solve_limited(&[]), SolveStatus::Sat);
        assert!(s.value(v[0]) || s.value(v[1]));
    }
}
