//! An indexed binary max-heap over variable activities (the VSIDS order).
//!
//! Supports decrease/increase-key by tracking each variable's position in
//! the heap array, as in MiniSat's `Heap` class.

use crate::types::Var;

pub(crate) struct ActivityHeap {
    /// Heap array of variable indices.
    heap: Vec<u32>,
    /// `pos[v]` = index of `v` in `heap`, or `u32::MAX` if absent.
    pos: Vec<u32>,
}

const ABSENT: u32 = u32::MAX;

impl ActivityHeap {
    pub(crate) fn new() -> Self {
        ActivityHeap {
            heap: Vec::new(),
            pos: Vec::new(),
        }
    }

    pub(crate) fn grow(&mut self, nvars: usize) {
        self.pos.resize(nvars, ABSENT);
    }

    pub(crate) fn contains(&self, v: Var) -> bool {
        self.pos[v.index()] != ABSENT
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub(crate) fn insert(&mut self, v: Var, activity: &[f64]) {
        debug_assert!(!self.contains(v));
        let i = self.heap.len();
        self.heap.push(v.0);
        self.pos[v.index()] = i as u32;
        self.sift_up(i, activity);
    }

    /// Restore heap order after `v`'s activity increased.
    pub(crate) fn bumped(&mut self, v: Var, activity: &[f64]) {
        let p = self.pos[v.index()];
        if p != ABSENT {
            self.sift_up(p as usize, activity);
        }
    }

    pub(crate) fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().unwrap();
        self.pos[top as usize] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(Var(top))
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        let v = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 2;
            let pv = self.heap[parent];
            if activity[v as usize] <= activity[pv as usize] {
                break;
            }
            self.heap[i] = pv;
            self.pos[pv as usize] = i as u32;
            i = parent;
        }
        self.heap[i] = v;
        self.pos[v as usize] = i as u32;
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        let v = self.heap[i];
        let n = self.heap.len();
        loop {
            let l = 2 * i + 1;
            if l >= n {
                break;
            }
            let r = l + 1;
            let child =
                if r < n && activity[self.heap[r] as usize] > activity[self.heap[l] as usize] {
                    r
                } else {
                    l
                };
            let cv = self.heap[child];
            if activity[cv as usize] <= activity[v as usize] {
                break;
            }
            self.heap[i] = cv;
            self.pos[cv as usize] = i as u32;
            i = child;
        }
        self.heap[i] = v;
        self.pos[v as usize] = i as u32;
    }

    /// Rebuild positions after a global activity rescale (order unchanged,
    /// so nothing to do — rescaling divides all activities uniformly).
    #[cfg(test)]
    pub(crate) fn check_invariants(&self, activity: &[f64]) {
        for i in 0..self.heap.len() {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            if l < self.heap.len() {
                assert!(activity[self.heap[i] as usize] >= activity[self.heap[l] as usize]);
            }
            if r < self.heap.len() {
                assert!(activity[self.heap[i] as usize] >= activity[self.heap[r] as usize]);
            }
            assert_eq!(self.pos[self.heap[i] as usize], i as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![0.5, 3.0, 1.0, 2.0];
        let mut h = ActivityHeap::new();
        h.grow(4);
        for v in 0..4 {
            h.insert(Var(v), &activity);
            h.check_invariants(&activity);
        }
        let order: Vec<u32> = std::iter::from_fn(|| h.pop_max(&activity).map(|v| v.0)).collect();
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    fn bump_moves_var_up() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut h = ActivityHeap::new();
        h.grow(3);
        for v in 0..3 {
            h.insert(Var(v), &activity);
        }
        activity[0] = 10.0;
        h.bumped(Var(0), &activity);
        h.check_invariants(&activity);
        assert_eq!(h.pop_max(&activity), Some(Var(0)));
    }

    #[test]
    fn contains_tracks_membership() {
        let activity = vec![1.0, 2.0];
        let mut h = ActivityHeap::new();
        h.grow(2);
        h.insert(Var(1), &activity);
        assert!(h.contains(Var(1)));
        assert!(!h.contains(Var(0)));
        h.pop_max(&activity);
        assert!(!h.contains(Var(1)));
        assert!(h.is_empty());
    }
}
