//! Property tests: the CDCL solver must agree with a brute-force enumerator
//! on random CNF instances, and models it returns must actually satisfy the
//! formula.

use proptest::prelude::*;
use rzen_sat::{Lit, Solver, Var};

const NVARS: u32 = 8;

/// A clause as a set of (var, positive) pairs.
type TestClause = Vec<(u32, bool)>;

fn clause_strategy() -> impl Strategy<Value = TestClause> {
    prop::collection::vec(((0..NVARS), any::<bool>()), 1..5)
}

fn cnf_strategy() -> impl Strategy<Value = Vec<TestClause>> {
    prop::collection::vec(clause_strategy(), 0..30)
}

fn eval_cnf(cnf: &[TestClause], assignment: u32) -> bool {
    cnf.iter().all(|clause| {
        clause
            .iter()
            .any(|&(v, pos)| (assignment & (1 << v) != 0) == pos)
    })
}

fn brute_force_sat(cnf: &[TestClause]) -> bool {
    (0..(1u32 << NVARS)).any(|a| eval_cnf(cnf, a))
}

fn load(cnf: &[TestClause]) -> (Solver, Vec<Var>) {
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..NVARS).map(|_| s.new_var()).collect();
    for clause in cnf {
        let lits: Vec<Lit> = clause
            .iter()
            .map(|&(v, pos)| Lit::new(vars[v as usize], pos))
            .collect();
        s.add_clause(&lits);
    }
    (s, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn solver_agrees_with_brute_force(cnf in cnf_strategy()) {
        let (mut s, vars) = load(&cnf);
        let sat = s.solve();
        prop_assert_eq!(sat, brute_force_sat(&cnf));
        if sat {
            let mut a = 0u32;
            for (i, &v) in vars.iter().enumerate() {
                if s.value(v) {
                    a |= 1 << i;
                }
            }
            prop_assert!(eval_cnf(&cnf, a), "returned model does not satisfy formula");
        }
    }

    #[test]
    fn assumptions_match_strengthened_formula(cnf in cnf_strategy(),
                                              assume in prop::collection::vec(((0..NVARS), any::<bool>()), 0..4)) {
        // Deduplicate assumption vars to avoid contradictory duplicates
        // (those are valid too, but tested separately).
        let mut seen = std::collections::HashSet::new();
        let assume: Vec<(u32, bool)> = assume.into_iter().filter(|&(v, _)| seen.insert(v)).collect();

        let (mut s, vars) = load(&cnf);
        let lits: Vec<Lit> = assume.iter().map(|&(v, pos)| Lit::new(vars[v as usize], pos)).collect();
        let got = s.solve_with_assumptions(&lits);

        // Reference: add assumptions as unit clauses to a fresh formula.
        let mut strengthened = cnf.clone();
        for &(v, pos) in &assume {
            strengthened.push(vec![(v, pos)]);
        }
        prop_assert_eq!(got, brute_force_sat(&strengthened));

        // The solver must remain usable afterwards and agree on the
        // original formula.
        prop_assert_eq!(s.solve(), brute_force_sat(&cnf));
    }

    #[test]
    fn repeated_solves_are_consistent(cnf in cnf_strategy()) {
        let (mut s, _) = load(&cnf);
        let first = s.solve();
        for _ in 0..3 {
            prop_assert_eq!(s.solve(), first);
        }
    }
}

// ---------------------------------------------------------------------------
// Wider differential suite: 20 variables, binary-heavy clauses, and an
// inprocessing pass in the middle of loading. This is the configuration the
// session substrate actually runs — short clauses ride the binary watch
// fast path, and inprocessing (subsumption + bounded variable elimination)
// must not change any verdict or corrupt any returned model.
// ---------------------------------------------------------------------------

const NVARS_WIDE: u32 = 20;

fn wide_clause_strategy() -> impl Strategy<Value = TestClause> {
    // 1..4 literals: units and binaries dominate, exercising the binary
    // watch lists and the unit-collapse path in strengthening.
    prop::collection::vec(((0..NVARS_WIDE), any::<bool>()), 1..4)
}

fn wide_cnf_strategy() -> impl Strategy<Value = Vec<TestClause>> {
    prop::collection::vec(wide_clause_strategy(), 0..24)
}

fn brute_force_sat_wide(cnf: &[TestClause]) -> bool {
    (0..(1u32 << NVARS_WIDE)).any(|a| eval_cnf(cnf, a))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn inprocessing_preserves_verdict_and_model(cnf in wide_cnf_strategy()) {
        let half = cnf.len() / 2;
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..NVARS_WIDE).map(|_| s.new_var()).collect();
        // Variables the second half still mentions must survive
        // elimination; everything else is fair game for BVE (their model
        // values come back through elim-clause model extension).
        for clause in &cnf[half..] {
            for &(v, _) in clause {
                s.set_frozen(vars[v as usize], true);
            }
        }
        let mut alive = true;
        for clause in &cnf[..half] {
            let lits: Vec<Lit> = clause.iter()
                .map(|&(v, pos)| Lit::new(vars[v as usize], pos)).collect();
            alive &= s.add_clause(&lits);
        }
        if alive {
            alive = s.inprocess();
        }
        for clause in &cnf[half..] {
            let lits: Vec<Lit> = clause.iter()
                .map(|&(v, pos)| Lit::new(vars[v as usize], pos)).collect();
            alive &= s.add_clause(&lits);
        }
        let sat = alive && s.solve();
        prop_assert_eq!(sat, brute_force_sat_wide(&cnf));
        if sat {
            let mut a = 0u32;
            for (i, &v) in vars.iter().enumerate() {
                if s.value(v) {
                    a |= 1 << i;
                }
            }
            prop_assert!(eval_cnf(&cnf, a), "model wrong after inprocessing");
        }
    }

    #[test]
    fn incremental_matches_fresh(groups in prop::collection::vec(wide_cnf_strategy(), 1..4)) {
        // Session usage pattern: each clause group is guarded by an
        // activation literal, solved under assumptions, and the solver is
        // inprocessed between rounds. Every round must agree with a fresh
        // solver given the accumulated groups as hard clauses.
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..NVARS_WIDE).map(|_| s.new_var()).collect();
        for &v in &vars {
            s.set_frozen(v, true); // future groups may mention any of them
        }
        let acts: Vec<Var> = groups.iter().map(|_| {
            let a = s.new_var();
            s.set_frozen(a, true);
            a
        }).collect();
        let mut alive = true;
        let mut accumulated: Vec<TestClause> = Vec::new();
        for (gi, group) in groups.iter().enumerate() {
            for clause in group {
                let mut lits: Vec<Lit> = clause.iter()
                    .map(|&(v, pos)| Lit::new(vars[v as usize], pos)).collect();
                lits.push(Lit::neg(acts[gi])); // active only under the assumption
                alive &= s.add_clause(&lits);
            }
            accumulated.extend(group.iter().cloned());
            let assumptions: Vec<Lit> =
                acts[..=gi].iter().map(|&a| Lit::pos(a)).collect();
            let got = alive && s.solve_with_assumptions(&assumptions);
            prop_assert_eq!(got, brute_force_sat_wide(&accumulated),
                "incremental verdict diverged from fresh at round {}", gi);
            // Quiesce between rounds, as a session would.
            if alive {
                alive = s.inprocess();
                prop_assert!(alive, "activation-guarded groups are always satisfiable");
            }
        }
    }
}
