//! Property tests: the CDCL solver must agree with a brute-force enumerator
//! on random CNF instances, and models it returns must actually satisfy the
//! formula.

use proptest::prelude::*;
use rzen_sat::{Lit, Solver, Var};

const NVARS: u32 = 8;

/// A clause as a set of (var, positive) pairs.
type TestClause = Vec<(u32, bool)>;

fn clause_strategy() -> impl Strategy<Value = TestClause> {
    prop::collection::vec(((0..NVARS), any::<bool>()), 1..5)
}

fn cnf_strategy() -> impl Strategy<Value = Vec<TestClause>> {
    prop::collection::vec(clause_strategy(), 0..30)
}

fn eval_cnf(cnf: &[TestClause], assignment: u32) -> bool {
    cnf.iter().all(|clause| {
        clause
            .iter()
            .any(|&(v, pos)| (assignment & (1 << v) != 0) == pos)
    })
}

fn brute_force_sat(cnf: &[TestClause]) -> bool {
    (0..(1u32 << NVARS)).any(|a| eval_cnf(cnf, a))
}

fn load(cnf: &[TestClause]) -> (Solver, Vec<Var>) {
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..NVARS).map(|_| s.new_var()).collect();
    for clause in cnf {
        let lits: Vec<Lit> = clause
            .iter()
            .map(|&(v, pos)| Lit::new(vars[v as usize], pos))
            .collect();
        s.add_clause(&lits);
    }
    (s, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn solver_agrees_with_brute_force(cnf in cnf_strategy()) {
        let (mut s, vars) = load(&cnf);
        let sat = s.solve();
        prop_assert_eq!(sat, brute_force_sat(&cnf));
        if sat {
            let mut a = 0u32;
            for (i, &v) in vars.iter().enumerate() {
                if s.value(v) {
                    a |= 1 << i;
                }
            }
            prop_assert!(eval_cnf(&cnf, a), "returned model does not satisfy formula");
        }
    }

    #[test]
    fn assumptions_match_strengthened_formula(cnf in cnf_strategy(),
                                              assume in prop::collection::vec(((0..NVARS), any::<bool>()), 0..4)) {
        // Deduplicate assumption vars to avoid contradictory duplicates
        // (those are valid too, but tested separately).
        let mut seen = std::collections::HashSet::new();
        let assume: Vec<(u32, bool)> = assume.into_iter().filter(|&(v, _)| seen.insert(v)).collect();

        let (mut s, vars) = load(&cnf);
        let lits: Vec<Lit> = assume.iter().map(|&(v, pos)| Lit::new(vars[v as usize], pos)).collect();
        let got = s.solve_with_assumptions(&lits);

        // Reference: add assumptions as unit clauses to a fresh formula.
        let mut strengthened = cnf.clone();
        for &(v, pos) in &assume {
            strengthened.push(vec![(v, pos)]);
        }
        prop_assert_eq!(got, brute_force_sat(&strengthened));

        // The solver must remain usable afterwards and agree on the
        // original formula.
        prop_assert_eq!(s.solve(), brute_force_sat(&cnf));
    }

    #[test]
    fn repeated_solves_are_consistent(cnf in cnf_strategy()) {
        let (mut s, _) = load(&cnf);
        let first = s.solve();
        for _ in 0..3 {
            prop_assert_eq!(s.solve(), first);
        }
    }
}
