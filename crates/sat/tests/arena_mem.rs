//! Session-lifecycle memory: a long-lived solver fed 100 incremental
//! queries (each a fresh activation-guarded cone, retired afterwards) must
//! not grow without bound. Inprocessing + relocating GC must reclaim arena
//! bytes, and index recycling must keep the variable count plateaued at
//! the live formula instead of the all-time total.

use rzen_sat::{Lit, Solver, Var};

/// One query's private cone: a chain of AND-gate Tseitin definitions over
/// fresh variables, rooted under an activation literal.
fn add_query_cone(s: &mut Solver, act: Var, width: usize) -> bool {
    let xs: Vec<Var> = (0..width).map(|_| s.new_var()).collect();
    let mut ok = true;
    for w in xs.windows(3) {
        let (o, a, b) = (w[0], w[1], w[2]);
        // o <-> a & b, guarded by the activation literal.
        ok &= s.add_clause(&[Lit::neg(o), Lit::pos(a), Lit::neg(act)]);
        ok &= s.add_clause(&[Lit::neg(o), Lit::pos(b), Lit::neg(act)]);
        ok &= s.add_clause(&[Lit::pos(o), Lit::neg(a), Lit::neg(b), Lit::neg(act)]);
    }
    // Constrain the root so search has something to decide.
    ok &= s.add_clause(&[Lit::pos(xs[0]), Lit::neg(act)]);
    ok
}

#[test]
fn arena_reclaimed_across_100_incremental_solves() {
    const QUERIES: usize = 100;
    const WIDTH: usize = 60;

    let mut s = Solver::new();
    // Long-lived session mode: nothing reads a retired query's model
    // values, so eliminated indices may be recycled.
    s.set_recycle_eliminated(true);

    let mut peak_arena = 0usize;
    let mut max_vars = 0usize;
    for q in 0..QUERIES {
        let act = s.new_var();
        s.set_frozen(act, true);
        assert!(add_query_cone(&mut s, act, WIDTH));
        assert!(
            s.solve_with_assumptions(&[Lit::pos(act)]),
            "query {q} must be SAT"
        );
        // Retire: the activation literal goes false forever, killing the
        // whole cone at level 0.
        s.set_frozen(act, false);
        assert!(s.add_clause(&[Lit::neg(act)]));
        // Quiesce every few retires, as the session layer does.
        if q % 5 == 4 {
            assert!(s.simplify_force());
            assert!(s.inprocess());
        }
        peak_arena = peak_arena.max(s.arena_bytes());
        max_vars = max_vars.max(s.num_vars());
    }
    assert!(s.simplify_force());
    assert!(s.inprocess());

    let created = (WIDTH + 1) * QUERIES;
    assert_eq!(s.stats.vars_created as usize, created);
    // Index recycling: the live variable count plateaus at a small
    // multiple of one query's cone, nowhere near the all-time total.
    assert!(
        max_vars < created / 2,
        "variable indices not recycled: peaked at {max_vars} of {created} created"
    );
    // Dead cones were eliminated and their arena space collected.
    assert!(s.stats.eliminated_vars > 0, "BVE never fired");
    assert!(s.stats.gcs > 0, "relocating GC never ran");
    let final_arena = s.arena_bytes();
    assert!(
        final_arena < peak_arena,
        "arena not reclaimed: final {final_arena} >= peak {peak_arena}"
    );
    // The steady-state arena holds a handful of live cones at most: far
    // below 100 queries' worth of clauses (~40 bytes/clause * ~180
    // clauses/query).
    assert!(
        final_arena < QUERIES * WIDTH * 40 / 2,
        "arena grew with query count: {final_arena} bytes after {QUERIES} queries"
    );

    // The session is still sound after all that churn.
    let act = s.new_var();
    assert!(add_query_cone(&mut s, act, WIDTH));
    assert!(s.solve_with_assumptions(&[Lit::pos(act)]));
}
